(* Serve-scale smoke (the @serve-scale-smoke alias): the million-group
   service fast path exercised at a quick 10^5-live-group cell.

   Default mode drives the E22 stream parameters for 120k events —
   enough for the long-hold tenants to ramp past 10^5 concurrent
   groups — three times: jobs=1 with the gc_space_overhead knob set
   (it must be fingerprint-neutral), jobs=4, and jobs=1 with the
   peel/plan memo caches disabled.  All three replay fingerprints must
   be byte-identical (SVC005 + cache neutrality), the memo must
   actually fire, and the SVC001-004 state lint must come back clean
   over the full 10^5-group arena.  Exits 1 on any divergence or
   finding.

   [corrupt] mode seeds one member-set corruption through the
   {!Group_table.set_members} test hook and exits 1 when the SVC001
   cover lint diagnoses it — the alias wraps this cell in
   [with-accepted-exit-codes 1], so a corruption slipping through
   uncaught (exit 0) fails the build. *)

open Peel_topology
open Peel_workload
open Peel_ctrl
module Rng = Peel_util.Rng
module D = Peel_check.Diagnostic

let fabric () = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 ()

let tenants () =
  [
    Stream.tenant ~rate:4000.0 ~scale:3 ~bytes:1e6 ~hold:1e6 ~churn:5e-4
      ~sends:5e-4 ();
    Stream.tenant ~rate:100.0 ~scale:8 ~bytes:4e6 ~hold:1e6 ~churn:5e-4
      ~sends:1e-3 ~fragmentation:0.25 ();
  ]

let serve ?(use_cache = true) ?gc ~jobs events =
  let fabric = fabric () in
  let stream = Stream.create fabric (Rng.create 4200) ~tenants:(tenants ()) () in
  let cfg =
    {
      Service.default_config with
      Service.capacity = 1024;
      use_cache;
      gc_space_overhead = gc;
    }
  in
  Service.run ~cfg ~jobs fabric ~events stream

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve-scale-smoke: " ^ s);
      exit 1)
    fmt

let expect_clean what ds =
  if ds <> [] then begin
    Format.eprintf "serve-scale-smoke: %s:@.%a@." what D.pp_report ds;
    exit 1
  end

let scale_cell () =
  let events = 120_000 in
  let out = serve ~gc:256 ~jobs:1 events in
  let out4 = serve ~jobs:4 events in
  let outnc = serve ~use_cache:false ~jobs:1 events in
  let s = out.Service.o_slo in
  if s.Service.groups_live < 100_000 then
    die "only %d live groups; the cell is supposed to hold >= 10^5"
      s.Service.groups_live;
  if s.Service.cache_hits = 0 then die "the peel/plan memo never fired";
  if outnc.Service.o_slo.Service.cache_hits <> 0 then
    die "cache-off run reported %d cache hits"
      outnc.Service.o_slo.Service.cache_hits;
  expect_clean "jobs=1 vs jobs=4 replay diverged (SVC005)"
    (Check_service.check_replay ~first:out.Service.o_fingerprint
       ~second:out4.Service.o_fingerprint);
  expect_clean "cache-on vs cache-off replay diverged"
    (Check_service.check_replay ~first:out.Service.o_fingerprint
       ~second:outnc.Service.o_fingerprint);
  expect_clean "state lint findings at scale" (Check_service.check_state out);
  Printf.printf
    "serve-scale-smoke: ok (%d events, %d live groups, %d hits / %d misses, \
     fingerprint %s at jobs 1/4 and cache on/off)\n"
    events s.Service.groups_live s.Service.cache_hits s.Service.cache_misses
    out.Service.o_fingerprint

(* Small cell: plenty of Installed groups, instant lint. *)
let corrupt_cell () =
  let out = serve ~jobs:1 2_000 in
  let fabric = out.Service.o_fabric in
  let groups = out.Service.o_groups in
  let racks_of slot =
    List.sort_uniq compare
      (List.map (Fabric.attach_tor fabric) (Group_table.member_list groups slot))
  in
  let slot =
    match
      Group_table.fold
        (fun acc slot ->
          match acc with
          | Some _ -> acc
          | None ->
              (* Needs members spanning more than one rack: the aligned
                 tenant's single-rack groups keep the same member racks
                 when shrunk to the source, which is no corruption at
                 all. *)
              if
                Group_table.stage groups slot = Service.Installed
                && List.length (racks_of slot) > 1
              then Some slot
              else None)
        groups None
    with
    | Some slot -> slot
    | None -> die "no multi-rack installed group to corrupt"
  in
  (* Claim the group only ever had its source: the installed tree now
     reaches racks that house no member, which SVC001 must flag. *)
  Group_table.set_members groups slot [ Group_table.source groups slot ];
  let ds = Check_service.check_state out in
  if D.has_code "SVC001" ds then begin
    Format.eprintf
      "serve-scale-smoke: seeded corruption diagnosed as intended:@.%a@."
      D.pp_report ds;
    exit 1
  end
  else begin
    prerr_endline
      "serve-scale-smoke: seeded member-set corruption was NOT diagnosed";
    exit 0 (* the alias accepts only exit 1 here, so 0 fails the build *)
  end

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "scale" with
  | "scale" -> scale_cell ()
  | "corrupt" -> corrupt_cell ()
  | mode ->
      prerr_endline ("serve-scale-smoke: unknown mode " ^ mode);
      exit 2
