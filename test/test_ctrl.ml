(* Tests for the two-stage refinement control plane: TCAM bookkeeping
   and eviction determinism, controller install timing and stage
   transitions, the CTRL invariant lints on good and corrupted inputs,
   the end-to-end refinement runs (conservation, the E17 bandwidth-gap
   property, bit-identical replay), a QCheck differential between the
   data plane's over-covered racks and the control plane's cover
   waste, and the new trace events' export round-trips. *)

open Peel_topology
open Peel_workload
open Peel_ctrl
module Plan = Peel.Plan
module Dataplane = Peel.Dataplane
module Trace = Peel_sim.Trace
module Engine = Peel_sim.Engine
module Json = Peel_util.Json
module Rng = Peel_util.Rng
module D = Peel_check.Diagnostic

let ls48 () = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 ~gpus_per_host:2 ()

let groups_for ?(n = 4) ?(seed = 1700) ?(hold = 0.05) fabric =
  Spec.poisson_groups fabric (Rng.create seed) ~n ~scale:8
    ~bytes:8e6 ~load:0.5 ~hold ~fragmentation:0.6 ()

let strings_of ds = List.map D.to_string ds

(* ------------------------------------------------------------------ *)
(* TCAM                                                                *)
(* ------------------------------------------------------------------ *)

let test_tcam_create_validates () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Tcam.create: capacity must be >= 1") (fun () ->
      ignore (Tcam.create ~capacity:0 ~policy:Tcam.Lru))

let test_tcam_install_and_holds () =
  let t = Tcam.create ~capacity:2 ~policy:Tcam.Lru in
  Alcotest.(check (list int)) "fits, no victims" []
    (Tcam.install t ~now:0.0 ~switch:3 ~group:7);
  Alcotest.(check bool) "holds" true (Tcam.holds t ~switch:3 ~group:7);
  Alcotest.(check bool) "other switch empty" false
    (Tcam.holds t ~switch:4 ~group:7);
  Alcotest.(check int) "used" 1 (Tcam.used t ~switch:3);
  Alcotest.(check (list int)) "reinstall is idempotent" []
    (Tcam.install t ~now:1.0 ~switch:3 ~group:7);
  Alcotest.(check int) "still one entry" 1 (Tcam.used t ~switch:3);
  Alcotest.(check int) "installs counted once" 1 (Tcam.installs t)

let test_tcam_lru_eviction () =
  let t = Tcam.create ~capacity:1 ~policy:Tcam.Lru in
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:1);
  Alcotest.(check (list int)) "oldest evicted" [ 1 ]
    (Tcam.install t ~now:1.0 ~switch:0 ~group:2);
  Alcotest.(check bool) "victim gone" false (Tcam.holds t ~switch:0 ~group:1);
  Alcotest.(check bool) "winner present" true (Tcam.holds t ~switch:0 ~group:2);
  Alcotest.(check int) "one eviction" 1 (Tcam.evictions t)

let test_tcam_lru_recency () =
  (* Touching an entry protects it: the untouched one is the victim. *)
  let t = Tcam.create ~capacity:2 ~policy:Tcam.Lru in
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:1);
  ignore (Tcam.install t ~now:1.0 ~switch:0 ~group:2);
  Tcam.touch t ~now:2.0 ~switch:0 ~group:1 ~bytes:10.0;
  Alcotest.(check (list int)) "least recent evicted" [ 2 ]
    (Tcam.install t ~now:3.0 ~switch:0 ~group:3)

let test_tcam_bytes_weighted () =
  (* The entry that carried the fewest bytes loses, not the oldest. *)
  let t = Tcam.create ~capacity:2 ~policy:Tcam.Bytes_weighted in
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:1);
  ignore (Tcam.install t ~now:1.0 ~switch:0 ~group:2);
  Tcam.touch t ~now:2.0 ~switch:0 ~group:1 ~bytes:1e9;
  Tcam.touch t ~now:2.5 ~switch:0 ~group:2 ~bytes:1e3;
  Alcotest.(check (list int)) "lightest evicted" [ 2 ]
    (Tcam.install t ~now:3.0 ~switch:0 ~group:3)

let test_tcam_tie_breaks_on_group_id () =
  (* Identical stamps: the lowest group id is the deterministic victim. *)
  let t = Tcam.create ~capacity:2 ~policy:Tcam.Lru in
  ignore (Tcam.install t ~now:5.0 ~switch:0 ~group:9);
  ignore (Tcam.install t ~now:5.0 ~switch:0 ~group:4);
  Alcotest.(check (list int)) "lowest id loses the tie" [ 4 ]
    (Tcam.install t ~now:6.0 ~switch:0 ~group:7)

let test_tcam_remove_group () =
  let t = Tcam.create ~capacity:4 ~policy:Tcam.Lru in
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:1);
  ignore (Tcam.install t ~now:0.0 ~switch:1 ~group:1);
  ignore (Tcam.install t ~now:0.0 ~switch:1 ~group:2);
  Alcotest.(check int) "both entries dropped" 2 (Tcam.remove_group t ~group:1);
  Alcotest.(check bool) "gone everywhere" false
    (Tcam.holds t ~switch:0 ~group:1 || Tcam.holds t ~switch:1 ~group:1);
  Alcotest.(check int) "departures are not evictions" 0 (Tcam.evictions t);
  Alcotest.(check (list (pair int int))) "occupancy sorted" [ (0, 0); (1, 1) ]
    (Tcam.occupancy t)

let test_tcam_max_used () =
  let t = Tcam.create ~capacity:3 ~policy:Tcam.Lru in
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:1);
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:2);
  ignore (Tcam.remove_group t ~group:1);
  ignore (Tcam.remove_group t ~group:2);
  Alcotest.(check int) "high-water survives removal" 2 (Tcam.max_used t);
  Alcotest.(check int) "tables are empty" 0 (Tcam.used t ~switch:0)

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

let cfg ?(rpc = 1e-3) ?(per_rule = 10e-6) ?(capacity = 8) () =
  { Controller.default_config with Controller.rpc; per_rule; capacity }

let test_controller_install_latency () =
  let c = Controller.create (cfg ()) in
  Alcotest.(check (float 1e-12)) "rpc + n * per_rule" 1.05e-3
    (Controller.install_latency c ~nrules:5)

let test_controller_stage_transition () =
  let c = Controller.create (cfg ()) in
  let e = Engine.create () in
  Controller.admit c e ~gid:1 ~at:0.0 ~switches:[ (10, 2); (11, 3) ] ~cost:6;
  Alcotest.(check string) "static before installs land" "static"
    (Controller.stage_to_string (Controller.stage c ~gid:1));
  Engine.run e;
  Alcotest.(check string) "refined after" "refined"
    (Controller.stage_to_string (Controller.stage c ~gid:1));
  Alcotest.(check int) "two entries installed" 2 (Controller.installs c);
  Alcotest.(check string) "unknown group is static" "static"
    (Controller.stage_to_string (Controller.stage c ~gid:99))

let test_controller_no_tcam_stays_static () =
  let c = Controller.create (cfg ~capacity:0 ()) in
  let e = Engine.create () in
  Controller.admit c e ~gid:1 ~at:0.0 ~switches:[ (10, 2) ] ~cost:2;
  Engine.run e;
  Alcotest.(check string) "capacity <= 0 disables refinement" "static"
    (Controller.stage_to_string (Controller.stage c ~gid:1));
  Alcotest.(check bool) "no table exists" true (Controller.tcam c = None)

let test_controller_release_cancels_install () =
  let c = Controller.create (cfg ()) in
  let e = Engine.create () in
  Controller.admit c e ~gid:1 ~at:0.0 ~switches:[ (10, 2) ] ~cost:2;
  Controller.release c ~gid:1;
  Engine.run e;
  Alcotest.(check string) "departed group never refines" "static"
    (Controller.stage_to_string (Controller.stage c ~gid:1));
  match Controller.tcam c with
  | None -> Alcotest.fail "tcam expected"
  | Some t -> Alcotest.(check int) "no entry landed" 0 (Tcam.used t ~switch:10)

let test_controller_duplicate_admit_raises () =
  let c = Controller.create (cfg ()) in
  let e = Engine.create () in
  Controller.admit c e ~gid:1 ~at:0.0 ~switches:[ (10, 2) ] ~cost:2;
  Alcotest.(check bool) "duplicate gid rejected" true
    (try
       Controller.admit c e ~gid:1 ~at:1.0 ~switches:[ (11, 2) ] ~cost:2;
       false
     with Invalid_argument _ -> true)

let test_controller_eviction_reverts_victim () =
  (* Capacity 1 on a shared switch: the second install displaces the
     first group, which must drop back to the static stage. *)
  let c = Controller.create (cfg ~capacity:1 ()) in
  let e = Engine.create () in
  Controller.admit c e ~gid:1 ~at:0.0 ~switches:[ (10, 2) ] ~cost:2;
  Controller.admit c e ~gid:2 ~at:0.5 ~switches:[ (10, 2) ] ~cost:2;
  Engine.run e;
  Alcotest.(check string) "victim back to static" "static"
    (Controller.stage_to_string (Controller.stage c ~gid:1));
  Alcotest.(check string) "winner refined" "refined"
    (Controller.stage_to_string (Controller.stage c ~gid:2));
  Alcotest.(check int) "one eviction" 1 (Controller.evictions c)

(* ------------------------------------------------------------------ *)
(* CTRL lints on good and corrupted inputs                             *)
(* ------------------------------------------------------------------ *)

let some_members fabric =
  let eps = Fabric.endpoints fabric in
  List.init 8 (fun i -> eps.(4 * i))

let test_check_refined_cover_clean () =
  let f = ls48 () in
  let members = some_members f in
  let source = List.hd members in
  let tree = Peel.multicast_tree f ~source ~dests:(List.tl members) in
  Alcotest.(check (list string)) "exact entries lint clean" []
    (strings_of (Check_ctrl.check_refined_cover f ~group:0 ~members ~tree))

let test_check_refined_cover_catches_mismatch () =
  let f = ls48 () in
  let members = some_members f in
  (* A tree spanning all the members, checked against a member list
     missing one rack's endpoints: the cover is no longer exact. *)
  let source = List.hd members in
  let tree = Peel.multicast_tree f ~source ~dests:(List.tl members) in
  let claimed = List.filteri (fun i _ -> i < List.length members - 2) members in
  let ds = Check_ctrl.check_refined_cover f ~group:0 ~members:claimed ~tree in
  Alcotest.(check bool) "CTRL001 on a bad member list" true
    (ds <> []
    && List.for_all (fun d -> d.D.code = "CTRL001") ds)

let test_check_budget () =
  let t = Tcam.create ~capacity:2 ~policy:Tcam.Lru in
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:1);
  ignore (Tcam.install t ~now:0.0 ~switch:0 ~group:2);
  Alcotest.(check (list string)) "at capacity is fine" []
    (strings_of (Check_ctrl.check_budget t))

let test_check_handoff () =
  let good =
    { Check_ctrl.h_gid = 0; h_ndests = 3; h_chunks = 4; h_static = 1;
      h_refined = 3; h_deliveries = 12 }
  in
  Alcotest.(check (list string)) "conserving handoff is clean" []
    (strings_of (Check_ctrl.check_handoff [ good ]));
  let lost = { good with Check_ctrl.h_refined = 2 } in
  let dup = { good with Check_ctrl.h_deliveries = 13 } in
  let ds = Check_ctrl.check_handoff [ good; lost; dup ] in
  Alcotest.(check int) "both violations caught" 2 (List.length ds);
  Alcotest.(check bool) "all CTRL003" true
    (List.for_all (fun d -> d.D.code = "CTRL003") ds)

let test_check_replay_mismatch () =
  Alcotest.(check (list string)) "identical digests pass" []
    (strings_of (Check_ctrl.check_replay ~first:"abc" ~second:"abc"));
  let ds = Check_ctrl.check_replay ~first:"abc" ~second:"abd" in
  Alcotest.(check bool) "CTRL004 on divergence" true
    (ds <> [] && List.for_all (fun d -> d.D.code = "CTRL004") ds)

let test_check_trace_ordering () =
  let good = Trace.create ~level:Trace.Full () in
  Trace.rule_install good ~time:1.0 ~group:5 ~switch:2 ~rules:3;
  Trace.refine good ~time:1.0 ~group:5 ~cost:7;
  Trace.evict good ~time:2.0 ~group:5 ~switch:2;
  Alcotest.(check (list string)) "install -> refine -> evict is legal" []
    (strings_of (Check_ctrl.check_trace good));
  let bad = Trace.create ~level:Trace.Full () in
  Trace.refine bad ~time:1.0 ~group:5 ~cost:7;
  let ds = Check_ctrl.check_trace bad in
  Alcotest.(check bool) "CTRL005 on refine without installs" true
    (ds <> [] && List.for_all (fun d -> d.D.code = "CTRL005") ds);
  let bad2 = Trace.create ~level:Trace.Full () in
  Trace.evict bad2 ~time:1.0 ~group:5 ~switch:2;
  Alcotest.(check bool) "CTRL005 on evict without install" true
    (Check_ctrl.check_trace bad2 <> [])

(* ------------------------------------------------------------------ *)
(* End-to-end refinement runs                                          *)
(* ------------------------------------------------------------------ *)

let run_scheme ?(rpc = 0.2e-3) ?(capacity = 8) fabric groups scheme =
  let trace = Trace.create ~level:Trace.Counters () in
  let cfg =
    { Controller.default_config with Controller.rpc; per_rule = 10e-6;
      capacity }
  in
  let out = Refine.run ~chunks:8 ~cfg ~trace fabric scheme groups in
  (out, Trace.counters trace)

let test_refine_conserves_chunks () =
  let f = ls48 () in
  let groups = groups_for f in
  List.iter
    (fun scheme ->
      let out, _ = run_scheme f groups scheme in
      Alcotest.(check (list string))
        (Refine.scheme_to_string scheme ^ " handoffs conserve")
        []
        (strings_of (Check_ctrl.check_handoff out.Refine.handoffs));
      List.iter
        (fun (r : Refine.report) ->
          Alcotest.(check int)
            (Printf.sprintf "group %d delivered everywhere" r.Refine.r_gid)
            (r.Refine.r_chunks * r.Refine.r_ndests)
            r.Refine.r_deliveries)
        out.Refine.reports)
    Refine.all_schemes

let test_refine_closes_bandwidth_gap () =
  (* The E17 acceptance property: with over-covering static plans and a
     fast controller, refined PEEL moves strictly fewer link bytes than
     static; the gap shrinks as install latency grows. *)
  let f = ls48 () in
  let groups = groups_for f in
  let static_out, sc = run_scheme f groups Refine.Peel_static in
  Alcotest.(check bool) "schedule over-covers" true
    (Refine.total_overcover_bytes static_out > 0.0);
  let _, fast = run_scheme ~rpc:0.2e-3 f groups Refine.Peel_refined in
  let _, slow = run_scheme ~rpc:2e-3 f groups Refine.Peel_refined in
  Alcotest.(check bool) "refined strictly under static" true
    (fast.Trace.bytes_reserved < sc.Trace.bytes_reserved);
  Alcotest.(check bool) "gap shrinks with install latency" true
    (slow.Trace.bytes_reserved >= fast.Trace.bytes_reserved);
  Alcotest.(check bool) "slow refined never exceeds static" true
    (slow.Trace.bytes_reserved <= sc.Trace.bytes_reserved)

let test_refine_static_never_refines () =
  let f = ls48 () in
  let groups = groups_for f in
  let out, _ = run_scheme f groups Refine.Peel_static in
  Alcotest.(check int) "no refined chunks" 0 (Refine.refined_chunks out);
  Alcotest.(check int) "no installs" 0 (Controller.installs out.Refine.controller)

let test_refine_ipmc_no_overcover () =
  let f = ls48 () in
  let groups = groups_for f in
  let out, _ = run_scheme f groups Refine.Ipmc in
  Alcotest.(check (float 0.0)) "ipmc wastes nothing" 0.0
    (Refine.total_overcover_bytes out);
  Alcotest.(check int) "every chunk on exact rules"
    (Refine.static_chunks out + Refine.refined_chunks out)
    (Refine.refined_chunks out)

let test_refine_replay_bit_identical () =
  let f = ls48 () in
  let groups = groups_for f in
  let a, _ = run_scheme f groups Refine.Peel_refined in
  let b, _ = run_scheme f groups Refine.Peel_refined in
  Alcotest.(check string) "CTRL004 digest" a.Refine.fingerprint
    b.Refine.fingerprint;
  Alcotest.(check (list string)) "check_replay agrees" []
    (strings_of
       (Check_ctrl.check_replay ~first:a.Refine.fingerprint
          ~second:b.Refine.fingerprint))

let test_refine_eviction_pressure () =
  (* Capacity 1 with long-lived groups forces evictions; conservation
     and the budget invariant must hold regardless. *)
  let f = ls48 () in
  let groups = groups_for ~n:8 ~hold:0.5 f in
  let out, _ = run_scheme ~capacity:1 f groups Refine.Peel_refined in
  Alcotest.(check (list string)) "handoffs conserve under churn" []
    (strings_of (Check_ctrl.check_handoff out.Refine.handoffs));
  (match Controller.tcam out.Refine.controller with
  | None -> Alcotest.fail "tcam expected"
  | Some t ->
      Alcotest.(check (list string)) "budget never exceeded" []
        (strings_of (Check_ctrl.check_budget t));
      Alcotest.(check int) "high-water at capacity" 1 (Tcam.max_used t))

(* ------------------------------------------------------------------ *)
(* Differential: data-plane over-cover vs. control-plane cover waste   *)
(* ------------------------------------------------------------------ *)

let overcover_differential =
  QCheck.Test.make ~name:"over_covered racks = union of cover waste" ~count:100
    QCheck.(triple (int_bound 9999) (int_range 2 20) (int_range 1 3))
    (fun (seed, nmembers, budget) ->
      let f = ls48 () in
      let eps = Fabric.endpoints f in
      let rng = Rng.create seed in
      let members =
        List.init nmembers (fun _ -> eps.(Rng.int rng (Array.length eps)))
        |> List.sort_uniq compare
      in
      match members with
      | [] | [ _ ] -> QCheck.assume_fail ()
      | source :: dests ->
          let plan = Plan.build ~budget f ~source ~dests in
          let from_dataplane = Dataplane.over_covered f plan in
          let from_cover =
            List.concat_map (fun p -> p.Plan.waste_tors) plan.Plan.packets
            |> List.sort_uniq compare
          in
          from_dataplane = from_cover)

(* ------------------------------------------------------------------ *)
(* New trace events: export round-trips                                *)
(* ------------------------------------------------------------------ *)

let ctrl_trace () =
  let t = Trace.create ~level:Trace.Full () in
  Trace.rule_install t ~time:0.5 ~group:3 ~switch:42 ~rules:4;
  Trace.rule_install t ~time:0.6 ~group:3 ~switch:43 ~rules:2;
  Trace.refine t ~time:0.6 ~group:3 ~cost:9;
  Trace.evict t ~time:1.5 ~group:3 ~switch:42;
  t

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("JSON parse failed: " ^ e)

let test_ctrl_event_counters () =
  let t = ctrl_trace () in
  let c = Trace.counters t in
  Alcotest.(check int) "rule_installs" 2 c.Trace.rule_installs;
  Alcotest.(check int) "refines" 1 c.Trace.refines;
  Alcotest.(check int) "evictions" 1 c.Trace.evictions;
  let v = parse_ok (Json.to_string (Trace.counters_to_json t)) in
  let get k =
    match Option.bind (Json.member k v) Json.get_num with
    | Some x -> int_of_float x
    | None -> Alcotest.fail ("missing counter " ^ k)
  in
  Alcotest.(check int) "json rule_installs" 2 (get "rule_installs");
  Alcotest.(check int) "json refines" 1 (get "refines");
  Alcotest.(check int) "json evictions" 1 (get "evictions")

let test_ctrl_event_json_roundtrip () =
  let t = ctrl_trace () in
  let v = parse_ok (Json.to_string (Trace.events_to_json t)) in
  match Json.get_arr v with
  | None -> Alcotest.fail "events JSON is not an array"
  | Some evs ->
      let kind ev =
        match Option.bind (Json.member "kind" ev) Json.get_str with
        | Some k -> k
        | None -> Alcotest.fail "event without kind"
      in
      Alcotest.(check (list string)) "kinds in emit order"
        [ "rule_install"; "rule_install"; "refine"; "evict" ]
        (List.map kind evs);
      let field ev k =
        match Option.bind (Json.member k ev) Json.get_num with
        | Some x -> int_of_float x
        | None -> Alcotest.fail ("missing field " ^ k)
      in
      (match evs with
      | [ ri; _; rf; ev ] ->
          Alcotest.(check int) "install group" 3 (field ri "group");
          Alcotest.(check int) "install switch" 42 (field ri "switch");
          Alcotest.(check int) "install rules" 4 (field ri "rules");
          Alcotest.(check int) "refine cost" 9 (field rf "cost");
          Alcotest.(check int) "evict switch" 42 (field ev "switch")
      | _ -> Alcotest.fail "expected four events")

let test_ctrl_event_csv () =
  let t = ctrl_trace () in
  let csv = Trace.events_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one line per event" 5 (List.length lines);
  let cols = List.length (String.split_on_char ',' Trace.csv_header) in
  List.iter
    (fun line ->
      Alcotest.(check int) "column count" cols
        (List.length (String.split_on_char ',' line)))
    lines

let test_ctrl_events_lint_clean () =
  (* The SIM006 structural lint accepts well-formed control events. *)
  let t = ctrl_trace () in
  Alcotest.(check (list string)) "check_trace clean" []
    (strings_of (Peel_check.Check_sim.check_trace t))

(* ------------------------------------------------------------------ *)
(* Service: open-loop multicast-as-a-service                           *)
(* ------------------------------------------------------------------ *)

let service_tenants =
  [
    Stream.tenant ~rate:400.0 ~scale:6 ~bytes:1e6 ~hold:0.5 ~churn:80.0
      ~sends:40.0 ();
    Stream.tenant ~rate:150.0 ~scale:10 ~bytes:4e6 ~hold:0.3 ~churn:30.0
      ~sends:20.0 ~fragmentation:0.5 ();
  ]

let run_service ?(capacity = 64) ?(admission = Service.Evict) ?(events = 800)
    ?(seed = 11) ?(jobs = 1) () =
  let fabric = ls48 () in
  let stream =
    Stream.create fabric (Rng.create seed) ~tenants:service_tenants ()
  in
  let cfg = { Service.default_config with Service.capacity; admission } in
  Service.run ~cfg ~jobs fabric ~events stream

let test_service_replay_across_pools () =
  (* The SVC005 contract: the decision log is byte-identical whether
     the install compiles run on one domain or four. *)
  let o1 = run_service ~jobs:1 () in
  let o4 = run_service ~jobs:4 () in
  Alcotest.(check string) "fingerprints agree" o1.Service.o_fingerprint
    o4.Service.o_fingerprint;
  Alcotest.(check (list string)) "replay lint clean" []
    (strings_of
       (Check_service.check_replay ~first:o1.Service.o_fingerprint
          ~second:o4.Service.o_fingerprint));
  Alcotest.(check (list string)) "state lint clean" []
    (strings_of (Check_service.check_state o4))

let test_service_delta_repeel_dominates () =
  (* The point of the tentpole: membership churn is absorbed by
     splicing, not by re-running the full peel per delta. *)
  let out = run_service () in
  let s = out.Service.o_slo in
  Alcotest.(check bool) "saw real churn" true (s.Service.delta_repeels > 100);
  Alcotest.(check int) "full peels = creates + fallbacks"
    (s.Service.creates + s.Service.splice_fallbacks)
    s.Service.full_repeels

(* Property (satellite 3): under TCAM saturation, installed state never
   exceeds the budget, displaced/denied groups degrade to the unicast
   fallback, and no rule for a departed group survives — across random
   seeds, tiny capacities and both admission policies. *)
let prop_service_saturation =
  QCheck.Test.make ~name:"service: saturation honors budget and fallback"
    ~count:25
    QCheck.(pair (int_range 0 100000) bool)
    (fun (seed, evict) ->
      let admission = if evict then Service.Evict else Service.Deny in
      let capacity = 1 + (seed mod 3) in
      let out = run_service ~capacity ~admission ~events:400 ~seed () in
      let s = out.Service.o_slo in
      let budget_ok =
        match out.Service.o_tcam with
        | None -> false
        | Some tc ->
            Tcam.max_used tc <= capacity
            && List.for_all
                 (fun (_, used) -> used <= capacity)
                 (Tcam.occupancy tc)
      in
      let policy_ok =
        match admission with
        | Service.Evict -> s.Service.denials = 0
        | Service.Deny -> s.Service.evictions = 0
      in
      let no_departed_rules =
        match out.Service.o_tcam with
        | None -> true
        | Some tc ->
            List.for_all
              (fun (sw, _) ->
                List.for_all
                  (fun gid -> not (Hashtbl.mem out.Service.o_departed gid))
                  (Tcam.groups_at tc ~switch:sw))
              (Tcam.occupancy tc)
      in
      let fallback_unicast =
        (* Every live group parked on the fallback path holds no entry
           anywhere — its sends must ride unicast. *)
        match out.Service.o_tcam with
        | None -> true
        | Some tc ->
            Group_table.fold
              (fun acc slot ->
                let gid = Group_table.gid out.Service.o_groups slot in
                acc
                && (Group_table.stage out.Service.o_groups slot
                    <> Service.Fallback
                   || List.for_all
                        (fun (sw, _) ->
                          not (Tcam.holds tc ~switch:sw ~group:gid))
                        (Tcam.occupancy tc)))
              out.Service.o_groups true
      in
      budget_ok && policy_ok && no_departed_rules && fallback_unicast
      && Check_service.check_state out = [])

let test_service_deny_fat_tree_reclaims () =
  (* Regression: on a fat-tree, a membership delta can add switches to
     an already-Installed group; only the new switches go back through
     admission, so a Deny rejection used to flip the stage to Fallback
     while the entries from the earlier install survived — violating
     the SVC003 all-or-nothing invariant.  The state lint must stay
     clean once denials start landing on re-admitted groups. *)
  let fabric = Fabric.fat_tree ~k:4 ~hosts_per_tor:2 ~gpus_per_host:2 () in
  let stream =
    Stream.create fabric (Rng.create 7) ~tenants:service_tenants ()
  in
  let cfg =
    {
      Service.default_config with
      Service.capacity = 8;
      admission = Service.Deny;
    }
  in
  let out = Service.run ~cfg fabric ~events:800 stream in
  Alcotest.(check bool) "saw denials" true
    (out.Service.o_slo.Service.denials > 0);
  Alcotest.(check (list string)) "state lint clean" []
    (strings_of (Check_service.check_state out))

let find_group out ~stage =
  let groups = out.Service.o_groups in
  let found =
    Group_table.fold
      (fun acc slot ->
        match acc with
        | Some _ -> acc
        | None ->
            if Group_table.stage groups slot = stage then Some slot else None)
      groups None
  in
  match found with
  | Some slot -> (Group_table.gid groups slot, slot)
  | None -> Alcotest.fail "expected a live group in the wanted stage"

let test_service_svc001_seeded_corruption () =
  let out = run_service () in
  let _gid, slot = find_group out ~stage:Service.Installed in
  let groups = out.Service.o_groups in
  (* Claim the group only ever had its source: the tree now touches
     racks that house no member. *)
  Group_table.set_members groups slot [ Group_table.source groups slot ];
  Alcotest.(check bool) "SVC001 diagnosed" true
    (D.has_code "SVC001" (Check_service.check_group_cover out slot))

let test_service_svc002_silent_by_construction () =
  (* The TCAM enforces its own budget on every install path, so the
     defensive SVC002 lint stays silent even on a saturated run. *)
  let out = run_service ~capacity:1 ~events:400 () in
  Alcotest.(check (list string)) "no budget finding" []
    (strings_of (Check_service.check_budget out))

let test_service_svc003_seeded_corruptions () =
  let out = run_service () in
  let gid, slot = find_group out ~stage:Service.Installed in
  let tc = Option.get out.Service.o_tcam in
  (* Drop one of the installed group's entries behind its back. *)
  Alcotest.(check bool) "entry removed" true
    (Tcam.remove_at tc
       ~switch:(List.hd (Group_table.switches out.Service.o_groups slot))
       ~group:gid);
  Alcotest.(check bool) "missing entry diagnosed" true
    (D.has_code "SVC003" (Check_service.check_stages out));
  (* And the dual lie: a group claiming fallback while entries survive. *)
  let out2 = run_service () in
  let _, slot2 = find_group out2 ~stage:Service.Installed in
  Group_table.set_stage out2.Service.o_groups slot2 Service.Fallback;
  Alcotest.(check bool) "stale fallback entries diagnosed" true
    (D.has_code "SVC003" (Check_service.check_stages out2))

let test_service_svc004_seeded_corruption () =
  let out = run_service () in
  let gid, _ = find_group out ~stage:Service.Installed in
  Hashtbl.replace out.Service.o_departed gid ();
  Alcotest.(check bool) "SVC004 diagnosed" true
    (D.has_code "SVC004" (Check_service.check_departed out))

let test_service_svc005_replay_codes () =
  Alcotest.(check (list string)) "equal fingerprints clean" []
    (strings_of (Check_service.check_replay ~first:"abc" ~second:"abc"));
  Alcotest.(check bool) "diverged fingerprints diagnosed" true
    (D.has_code "SVC005"
       (Check_service.check_replay ~first:"abc" ~second:"abd"))

(* ------------------------------------------------------------------ *)
(* Million-group fast path: arena store, victim heap, memo neutrality  *)
(* ------------------------------------------------------------------ *)

(* The arena recycles freed slots under a bumped generation, so stale
   (slot, generation) handles never resolve to the new tenant. *)
let test_group_table_recycles_slots () =
  (* Borrow a real tree/switches/dist triple from a live run — the
     arena stores them opaquely. *)
  let out = run_service ~events:50 () in
  let src = out.Service.o_groups in
  let slot0 =
    match
      Group_table.fold
        (fun acc s -> match acc with Some _ -> acc | None -> Some s)
        src None
    with
    | Some s -> s
    | None -> Alcotest.fail "no live group to borrow a tree from"
  in
  let tree = Group_table.tree src slot0 in
  let switches = Group_table.switches src slot0 in
  let dist = Group_table.dist src slot0 in
  let t = Group_table.create ~width:64 () in
  let add gid =
    Group_table.add t ~gid ~source:0 ~members:[ 0; 1 ] ~tree ~switches ~dist
      ~stage:Service.Pending
  in
  let _s1 = add 1 in
  let s2 = add 2 in
  let _s3 = add 3 in
  Alcotest.(check int) "three live" 3 (Group_table.live t);
  let gen2 = Group_table.generation t s2 in
  Alcotest.(check bool) "handle valid while live" true
    (Group_table.valid t ~slot:s2 ~gen:gen2);
  Alcotest.(check bool) "removed" true (Group_table.remove t ~gid:2);
  Alcotest.(check bool) "remove is not idempotent" false
    (Group_table.remove t ~gid:2);
  Alcotest.(check int) "two live" 2 (Group_table.live t);
  Alcotest.(check bool) "slot dead" false (Group_table.slot_live t s2);
  Alcotest.(check bool) "stale handle invalid" false
    (Group_table.valid t ~slot:s2 ~gen:gen2);
  let s9 = add 9 in
  Alcotest.(check int) "freed slot recycled" s2 s9;
  Alcotest.(check bool) "generation bumped" true
    (Group_table.generation t s9 > gen2);
  Alcotest.(check bool) "old handle still invalid" false
    (Group_table.valid t ~slot:s2 ~gen:gen2);
  Alcotest.(check int) "slot resolves to the new gid" 9 (Group_table.gid t s9);
  Alcotest.(check (list int)) "gids sorted" [ 1; 3; 9 ]
    (Group_table.gids_sorted t);
  Alcotest.(check bool) "duplicate gid rejected" true
    (try
       ignore (add 1);
       false
     with Invalid_argument _ -> true)

(* The indexed-heap victim selection must pick exactly the entry the
   old O(capacity) scan would: minimum score under the policy, ties to
   the lowest group id — over a long random mix of installs, touches
   and removals, with stamps coarsened so ties actually occur. *)
let test_tcam_heap_matches_naive_scan () =
  List.iter
    (fun policy ->
      let t = Tcam.create ~capacity:4 ~policy in
      (* Naive model of one switch: (group, last_used, bytes). *)
      let model = ref [] in
      let mscore (_, lu, by) =
        match policy with Tcam.Lru -> lu | Tcam.Bytes_weighted -> by
      in
      let state = ref 12345 in
      let rand m =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod m
      in
      for i = 1 to 3000 do
        let now = float_of_int (i / 8) in
        let g = rand 24 in
        match rand 3 with
        | 0 ->
            let expected =
              if List.exists (fun (g', _, _) -> g' = g) !model then []
              else if List.length !model < 4 then []
              else begin
                let victim =
                  List.fold_left
                    (fun acc e ->
                      match acc with
                      | None -> Some e
                      | Some b ->
                          let se = mscore e and sb = mscore b in
                          let (ge, _, _) = e and gb, _, _ = b in
                          if se < sb || (se = sb && ge < gb) then Some e
                          else acc)
                    None !model
                in
                match victim with
                | Some (gv, _, _) -> [ gv ]
                | None -> assert false
              end
            in
            Alcotest.(check (list int))
              (Printf.sprintf "victims at op %d" i)
              expected
              (Tcam.install t ~now ~switch:0 ~group:g);
            if not (List.exists (fun (g', _, _) -> g' = g) !model) then
              model :=
                (g, now, 0.0)
                :: List.filter
                     (fun (g', _, _) -> not (List.mem g' expected))
                     !model
        | 1 ->
            let bytes = float_of_int (rand 5) *. 100.0 in
            Tcam.touch t ~now ~switch:0 ~group:g ~bytes;
            model :=
              List.map
                (fun ((g', _, by) as e) ->
                  if g' = g then (g', now, by +. bytes) else e)
                !model
        | _ ->
            Alcotest.(check bool)
              (Printf.sprintf "removal presence at op %d" i)
              (List.exists (fun (g', _, _) -> g' = g) !model)
              (Tcam.remove_at t ~switch:0 ~group:g);
            model := List.filter (fun (g', _, _) -> g' <> g) !model
      done;
      Alcotest.(check int)
        (Tcam.policy_to_string policy ^ " occupancy agrees")
        (List.length !model)
        (Tcam.used t ~switch:0))
    [ Tcam.Lru; Tcam.Bytes_weighted ]

(* Departures of still-pending groups are O(1) tombstones in the
   install queue, not a List.filter over the whole backlog: with the
   flush pinned past the horizon, 10^4 pending departs complete
   instantly, and the drain neither compiles nor leaks a departed
   group's rules (SVC004). *)
let test_service_departs_pending_backlog () =
  let fabric = ls48 () in
  let tenants =
    [
      Stream.tenant ~rate:2000.0 ~scale:3 ~bytes:1e5 ~hold:1e-3 ~churn:0.0
        ~sends:0.0 ();
    ]
  in
  let stream = Stream.create fabric (Rng.create 23) ~tenants () in
  let cfg =
    {
      Service.default_config with
      Service.capacity = 64;
      batch = 1_000_000;
      install_delay = 1e9;
    }
  in
  let out = Service.run ~cfg ~jobs:1 fabric ~events:25_000 stream in
  let s = out.Service.o_slo in
  Alcotest.(check bool)
    (Printf.sprintf "enough pending departs (%d)" s.Service.departs)
    true
    (s.Service.departs >= 10_000);
  Alcotest.(check bool) "nothing flushed before the drain" true
    (s.Service.batches <= 1);
  Alcotest.(check (list string)) "state lint clean" []
    (strings_of (Check_service.check_state out))

(* Tentpole differential: the arena + shard + memo fast path must be
   observationally identical to the PR 8 reference implementation —
   byte-identical decision logs at jobs 1 and 4, with and without the
   memo caches, and an SVC001-004-clean quiescent state, over random
   seeds, capacities and both admission policies. *)
let prop_service_matches_reference =
  QCheck.Test.make
    ~name:"service: fast path replays the reference bit-identically"
    ~count:12
    QCheck.(pair (int_range 0 1_000_000) bool)
    (fun (seed, evict) ->
      let fabric = ls48 () in
      let events = 300 + (seed mod 200) in
      let capacity = 8 + (seed mod 57) in
      let stream () =
        Stream.create fabric (Rng.create seed) ~tenants:service_tenants ()
      in
      let run_new ~use_cache ~jobs =
        let cfg =
          {
            Service.default_config with
            Service.capacity;
            admission = (if evict then Service.Evict else Service.Deny);
            use_cache;
          }
        in
        Service.run ~cfg ~jobs fabric ~events (stream ())
      in
      let o1 = run_new ~use_cache:true ~jobs:1 in
      let o4 = run_new ~use_cache:true ~jobs:4 in
      let onc = run_new ~use_cache:false ~jobs:1 in
      let rcfg =
        {
          Service_ref.default_config with
          Service_ref.capacity;
          admission = (if evict then Service_ref.Evict else Service_ref.Deny);
        }
      in
      let oref = Service_ref.run ~cfg:rcfg ~jobs:1 fabric ~events (stream ()) in
      let fp = o1.Service.o_fingerprint in
      String.equal fp o4.Service.o_fingerprint
      && String.equal fp onc.Service.o_fingerprint
      && String.equal fp oref.Service_ref.o_fingerprint
      && o1.Service.o_slo.Service.installs
         = oref.Service_ref.o_slo.Service_ref.installs
      && o1.Service.o_slo.Service.evictions
         = oref.Service_ref.o_slo.Service_ref.evictions
      && Check_service.check_state o4 = [])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_ctrl"
    [
      ( "tcam",
        [
          Alcotest.test_case "create validates" `Quick test_tcam_create_validates;
          Alcotest.test_case "install/holds" `Quick test_tcam_install_and_holds;
          Alcotest.test_case "lru eviction" `Quick test_tcam_lru_eviction;
          Alcotest.test_case "lru recency" `Quick test_tcam_lru_recency;
          Alcotest.test_case "bytes weighted" `Quick test_tcam_bytes_weighted;
          Alcotest.test_case "deterministic ties" `Quick
            test_tcam_tie_breaks_on_group_id;
          Alcotest.test_case "remove group" `Quick test_tcam_remove_group;
          Alcotest.test_case "high-water mark" `Quick test_tcam_max_used;
        ] );
      ( "controller",
        [
          Alcotest.test_case "install latency" `Quick
            test_controller_install_latency;
          Alcotest.test_case "stage transition" `Quick
            test_controller_stage_transition;
          Alcotest.test_case "no tcam" `Quick test_controller_no_tcam_stays_static;
          Alcotest.test_case "release cancels" `Quick
            test_controller_release_cancels_install;
          Alcotest.test_case "duplicate admit" `Quick
            test_controller_duplicate_admit_raises;
          Alcotest.test_case "eviction reverts" `Quick
            test_controller_eviction_reverts_victim;
        ] );
      ( "lints",
        [
          Alcotest.test_case "refined cover clean" `Quick
            test_check_refined_cover_clean;
          Alcotest.test_case "refined cover mismatch" `Quick
            test_check_refined_cover_catches_mismatch;
          Alcotest.test_case "budget" `Quick test_check_budget;
          Alcotest.test_case "handoff conservation" `Quick test_check_handoff;
          Alcotest.test_case "replay digest" `Quick test_check_replay_mismatch;
          Alcotest.test_case "trace ordering" `Quick test_check_trace_ordering;
        ] );
      ( "refine",
        [
          Alcotest.test_case "conserves chunks" `Quick test_refine_conserves_chunks;
          Alcotest.test_case "closes bandwidth gap" `Quick
            test_refine_closes_bandwidth_gap;
          Alcotest.test_case "static never refines" `Quick
            test_refine_static_never_refines;
          Alcotest.test_case "ipmc no overcover" `Quick test_refine_ipmc_no_overcover;
          Alcotest.test_case "replay bit-identical" `Quick
            test_refine_replay_bit_identical;
          Alcotest.test_case "eviction pressure" `Quick
            test_refine_eviction_pressure;
        ] );
      ("differential", [ qt overcover_differential ]);
      ( "service",
        [
          Alcotest.test_case "replay across pools" `Quick
            test_service_replay_across_pools;
          Alcotest.test_case "delta repeel dominates" `Quick
            test_service_delta_repeel_dominates;
          qt prop_service_saturation;
          Alcotest.test_case "deny reclaims on fat-tree" `Quick
            test_service_deny_fat_tree_reclaims;
          Alcotest.test_case "svc001 corruption" `Quick
            test_service_svc001_seeded_corruption;
          Alcotest.test_case "svc002 silent" `Quick
            test_service_svc002_silent_by_construction;
          Alcotest.test_case "svc003 corruptions" `Quick
            test_service_svc003_seeded_corruptions;
          Alcotest.test_case "svc004 corruption" `Quick
            test_service_svc004_seeded_corruption;
          Alcotest.test_case "svc005 replay codes" `Quick
            test_service_svc005_replay_codes;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "arena recycles slots" `Quick
            test_group_table_recycles_slots;
          Alcotest.test_case "victim heap matches naive scan" `Quick
            test_tcam_heap_matches_naive_scan;
          Alcotest.test_case "pending departs tombstoned" `Quick
            test_service_departs_pending_backlog;
          qt prop_service_matches_reference;
        ] );
      ( "trace",
        [
          Alcotest.test_case "counters" `Quick test_ctrl_event_counters;
          Alcotest.test_case "events json" `Quick test_ctrl_event_json_roundtrip;
          Alcotest.test_case "events csv" `Quick test_ctrl_event_csv;
          Alcotest.test_case "sim lint clean" `Quick test_ctrl_events_lint_clean;
        ] );
    ]
