(* Tests for Peel_check: the static invariant checker must certify
   every artifact the library produces, and must catch each injected
   corruption with the right diagnostic code. *)

open Peel_topology
module D = Peel_check.Diagnostic
module Check_tree = Peel_check.Check_tree
module Check_plan = Peel_check.Check_plan
module Check_sim = Peel_check.Check_sim
module Check_collective = Peel_check.Check_collective
module Plan = Peel.Plan
module Tree = Peel.Tree
module Rng = Peel_util.Rng

let ft8 () = Fabric.fat_tree ~k:8 ~hosts_per_tor:2 ~gpus_per_host:2 ()
let ls () = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 ()

let group fabric rng ~scale =
  let members = Peel_workload.Spec.place fabric rng ~scale () in
  let source = List.hd members in
  (source, List.filter (fun m -> m <> source) members)

let check_no_errors what ds =
  Alcotest.(check (list string))
    what []
    (List.map D.to_string (D.errors ds))

let check_code what code ds =
  Alcotest.(check bool) (what ^ " flags " ^ code) true (D.has_code code ds);
  Alcotest.(check bool) (what ^ " has errors") true (D.has_errors ds)

(* ------------------------------------------------------------------ *)
(* Clean artifacts are certified                                       *)
(* ------------------------------------------------------------------ *)

let test_scenario_clean_fat_tree () =
  let fabric = ft8 () in
  let source, dests = group fabric (Rng.create 1) ~scale:24 in
  check_no_errors "fat-tree scenario" (Peel_check.check_scenario fabric ~source ~dests)

let test_scenario_clean_leaf_spine () =
  let fabric = ls () in
  let source, dests = group fabric (Rng.create 2) ~scale:12 in
  check_no_errors "leaf-spine scenario"
    (Peel_check.check_scenario fabric ~source ~dests)

let test_scenario_clean_under_failures () =
  let fabric = ls () in
  let rng = Rng.create 3 in
  ignore (Fabric.fail_random fabric ~rng ~tier:`All ~fraction:0.1 ());
  let source, dests = group fabric rng ~scale:12 in
  check_no_errors "failed-fabric scenario"
    (Peel_check.check_scenario fabric ~source ~dests)

let test_scenario_clean_budgeted () =
  let fabric = ft8 () in
  let source, dests = group fabric (Rng.create 4) ~scale:30 in
  check_no_errors "budgeted scenario"
    (Peel_check.check_scenario ~budget:2 fabric ~source ~dests)

let test_layer_peel_within_theorem_bound () =
  (* Theorem 2.5: the greedy stays within min(F,|D|) of the symmetric
     optimum even as links fail. *)
  let rng = Rng.create 5 in
  for _ = 1 to 10 do
    let fabric = ls () in
    ignore (Fabric.fail_random fabric ~rng ~tier:`All ~fraction:0.15 ());
    let source, dests = group fabric rng ~scale:8 in
    match
      Peel_steiner.Layer_peel.build (Fabric.graph fabric) ~source ~dests
    with
    | None -> Alcotest.fail "group disconnected despite ensure_connected"
    | Some tree ->
        check_no_errors "layer-peel tree"
          (Check_tree.check ~fabric (Fabric.graph fabric) tree ~source ~dests)
  done

(* ------------------------------------------------------------------ *)
(* Injected corruption 1: broken tree edge                             *)
(* ------------------------------------------------------------------ *)

let test_corrupt_tree_broken_edge () =
  let fabric = ft8 () in
  let g = Fabric.graph fabric in
  let source, dests = group fabric (Rng.create 10) ~scale:16 in
  match Peel.multicast_tree fabric ~source ~dests with
  | None -> Alcotest.fail "no tree on a healthy fabric"
  | Some tree ->
      check_no_errors "tree before corruption"
        (Check_tree.check ~fabric g tree ~source ~dests);
      (* Fail a fabric link the tree rides; the tree is now stale. *)
      Graph.fail_link g (List.hd (Tree.link_ids tree));
      check_code "broken edge" "TREE002" (Check_tree.check g tree ~source ~dests);
      Graph.restore_all g

(* ------------------------------------------------------------------ *)
(* Injected corruption 2: duplicated receiver                          *)
(* ------------------------------------------------------------------ *)

let test_corrupt_plan_duplicate_receiver () =
  let fabric = ft8 () in
  let source, dests = group fabric (Rng.create 11) ~scale:16 in
  let plan = Peel.plan fabric ~source ~dests in
  check_no_errors "plan before corruption" (Check_plan.check fabric plan);
  (* Deliver the first packet twice: every endpoint in it now receives
     two copies and its racks are covered by two packets. *)
  let corrupt =
    { plan with Plan.packets = List.hd plan.Plan.packets :: plan.Plan.packets }
  in
  let ds = Check_plan.check fabric corrupt in
  check_code "duplicate receiver" "PLAN001" ds;
  check_code "duplicate coverage" "PLAN005" ds

let test_corrupt_ring_duplicate_receiver () =
  let fabric = ft8 () in
  let source, dests = group fabric (Rng.create 12) ~scale:8 in
  let members = List.sort_uniq compare (source :: dests) in
  let ring = Peel_baselines.Ring.schedule fabric ~source ~members in
  check_no_errors "ring before corruption"
    (Check_collective.check_ring ring ~source ~members);
  (* Point the last hop back at the second member: one rank now
     receives twice and the tail rank never receives. *)
  let order = ring.Peel_baselines.Ring.order in
  let n = Array.length order in
  let corrupt_hops =
    List.mapi
      (fun i (s, r) -> if i = n - 2 then (s, order.(1)) else (s, r))
      ring.Peel_baselines.Ring.hops
  in
  let corrupt = { ring with Peel_baselines.Ring.hops = corrupt_hops } in
  let ds = Check_collective.check_ring corrupt ~source ~members in
  check_code "ring duplicate receiver" "COL003" ds

(* ------------------------------------------------------------------ *)
(* Injected corruption 3: over-covering prefix                         *)
(* ------------------------------------------------------------------ *)

let test_corrupt_plan_overcovering_prefix () =
  let fabric = ft8 () in
  (* Members on ToRs 0 and 2 of pod 0: the exact cover uses two
     singleton prefixes (00, 10). *)
  let tors = Fabric.tors_of_pod fabric 0 in
  let on_tor t =
    Array.to_list (Fabric.endpoints fabric)
    |> List.filter (fun e -> Fabric.attach_tor fabric e = t)
  in
  let eps0 = on_tor tors.(0) and eps2 = on_tor tors.(2) in
  let source = List.hd eps0 in
  let dests = List.tl eps0 @ eps2 in
  let plan = Peel.plan fabric ~source ~dests in
  Alcotest.(check int) "two packets" 2 (Plan.num_packets plan);
  check_no_errors "plan before corruption" (Check_plan.check fabric plan);
  (* Widen one packet's prefix to the whole pod: it now also covers the
     other packet's rack (and two memberless racks it never accounted
     as waste). *)
  let corrupt =
    {
      plan with
      Plan.packets =
        List.mapi
          (fun i p ->
            if i = 0 then
              { p with Plan.tor_prefix = Peel.Cover.make ~m:2 ~value:0 ~len:0 }
            else p)
          plan.Plan.packets;
    }
  in
  let ds = Check_plan.check fabric corrupt in
  check_code "over-covering prefix" "PLAN005" ds;
  check_code "stale reach accounting" "PLAN004" ds

(* ------------------------------------------------------------------ *)
(* Injected corruption 4: header over the 8-byte budget                *)
(* ------------------------------------------------------------------ *)

let test_corrupt_plan_header_budget () =
  let fabric = ft8 () in
  let source, dests = group fabric (Rng.create 13) ~scale:8 in
  let plan = Peel.plan fabric ~source ~dests in
  let corrupt = { plan with Plan.header_bytes = 9 } in
  let ds = Check_plan.check fabric corrupt in
  check_code "header budget" "PLAN007" ds;
  check_code "header formula" "PLAN006" ds

(* ------------------------------------------------------------------ *)
(* Injected corruption 5: rule table over the k-1 budget               *)
(* ------------------------------------------------------------------ *)

let test_corrupt_rules_over_budget () =
  let fabric = ft8 () in
  (* k = 8 -> m = 2 -> 7 rules.  A table built one bit too wide holds
     15 rules: double the static budget. *)
  Alcotest.(check int) "budget is k-1" 7 (Check_plan.rule_budget fabric);
  check_no_errors "correct table"
    (Check_plan.check_rules fabric (Peel.state_table fabric));
  let oversized = Peel.Rules.static_table ~m:3 in
  let ds = Check_plan.check_rules fabric oversized in
  check_code "rule budget" "RULE001" ds;
  check_code "table width" "RULE003" ds

(* ------------------------------------------------------------------ *)
(* Injected corruption 6: chunk-count mismatch                         *)
(* ------------------------------------------------------------------ *)

let test_corrupt_chunk_conservation () =
  check_no_errors "conserved"
    (Check_sim.check_chunk_conservation ~chunks:8 ~receivers:4 ~delivered:32);
  check_code "one lost chunk" "SIM005"
    (Check_sim.check_chunk_conservation ~chunks:8 ~receivers:4 ~delivered:31);
  check_code "duplicate delivery" "SIM005"
    (Check_sim.check_chunk_conservation ~chunks:8 ~receivers:4 ~delivered:33)

(* ------------------------------------------------------------------ *)
(* More corruption: Theorem 2.5 bound, outcomes, cc params, schedules  *)
(* ------------------------------------------------------------------ *)

let test_corrupt_tree_cost_bound () =
  (* |D| = 1 makes the Theorem 2.5 factor 1, so any tree costlier than
     the direct path violates the bound.  Hand-build one that detours
     through a second spine it never needs. *)
  let fabric = Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:2 () in
  let g = Fabric.graph fabric in
  let hosts = Fabric.hosts fabric in
  let source = hosts.(0) in
  let dest = hosts.(2) (* other leaf *) in
  let tor0 = Fabric.attach_tor fabric source in
  let tor1 = Fabric.attach_tor fabric dest in
  let spines =
    Array.to_list (Graph.nodes_of_kind g Graph.Spine) |> List.sort compare
  in
  let s0, s1 =
    match spines with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "two spines"
  in
  let edge parent child =
    match Graph.link_between g parent child with
    | Some lid -> (child, (parent, lid))
    | None -> Alcotest.fail (Printf.sprintf "no link %d->%d" parent child)
  in
  let wasteful =
    Tree.of_parents g ~root:source
      ~parents:
        [
          edge source tor0; edge tor0 s0; edge s0 tor1; edge tor1 dest;
          (* pointless extra branch *)
          edge tor0 s1;
        ]
  in
  let ds = Check_tree.check ~fabric g wasteful ~source ~dests:[ dest ] in
  check_code "cost bound" "TREE005" ds

let test_corrupt_outcome () =
  let fabric = ls () in
  let outcome =
    Peel_collective.Runner.run fabric Peel_collective.Scheme.Peel
      (Peel_workload.Spec.poisson_broadcasts fabric (Rng.create 14) ~n:3
         ~scale:8 ~bytes:1e6 ~load:0.3 ())
  in
  let telemetry = outcome.Peel_collective.Runner.telemetry in
  let makespan = outcome.Peel_collective.Runner.makespan in
  check_no_errors "real outcome"
    (Check_sim.check_outcome ~expected:3
       ~ccts:outcome.Peel_collective.Runner.ccts ~makespan telemetry);
  check_code "lost collective" "SIM003"
    (Check_sim.check_outcome ~expected:3 ~ccts:[ 1e-3; nan; 2e-3 ] ~makespan
       telemetry);
  check_code "missing collective" "SIM003"
    (Check_sim.check_outcome ~expected:3 ~ccts:[ 1e-3 ] ~makespan telemetry)

let test_corrupt_trace () =
  let module Trace = Peel_sim.Trace in
  (* A clean trace from a real run passes. *)
  let fabric = ls () in
  let trace = Trace.create () in
  let cs =
    Peel_workload.Spec.poisson_broadcasts fabric (Rng.create 14) ~n:2 ~scale:8
      ~bytes:1e6 ~load:0.3 ()
  in
  let receivers =
    List.fold_left
      (fun acc (c : Peel_workload.Spec.collective) ->
        acc + List.length c.Peel_workload.Spec.dests)
      0 cs
  in
  ignore
    (Peel_collective.Runner.run ~chunks:8 ~trace fabric
       Peel_collective.Scheme.Peel cs);
  check_no_errors "real trace"
    (Check_sim.check_trace ~expected_deliveries:(8 * receivers) trace);
  (* Conservation violation: demand one more delivery than traced. *)
  check_code "missing delivery" "SIM005"
    (Check_sim.check_trace ~expected_deliveries:((8 * receivers) + 1) trace);
  (* Structural corruption: a hand-built log that runs backwards. *)
  let bad = Trace.create () in
  Trace.delivery bad ~time:2.0 ~node:1 ~flow:0 ~chunk:0;
  Trace.delivery bad ~time:1.0 ~node:2 ~flow:0 ~chunk:1;
  check_code "backwards timestamps" "SIM006" (Check_sim.check_trace bad);
  (* Malformed reserve event: negative bytes. *)
  let bad = Trace.create () in
  Trace.reserve bad ~time:0.0 ~link:0 ~bytes:(-5.0) ~queue_delay:0.0
    ~backlog:0.0;
  check_code "negative bytes" "SIM006" (Check_sim.check_trace bad);
  (* Counter drift: counters say more deliveries than the log holds. *)
  let bad = Trace.create () in
  Trace.delivery bad ~time:1.0 ~node:1 ~flow:0 ~chunk:0;
  (Trace.counters bad).Trace.deliveries <- 2;
  check_code "counter drift" "SIM006" (Check_sim.check_trace bad)

let test_corrupt_cc_params () =
  check_no_errors "paper defaults"
    (Check_sim.check_cc_params ~ecn_delay:20e-6 ~line_rate:12.5e9 ());
  check_code "negative ECN threshold" "SIM002"
    (Check_sim.check_cc_params ~ecn_delay:(-1e-6) ~line_rate:12.5e9 ());
  check_code "zero guard" "SIM002"
    (Check_sim.check_cc_params ~guard:(Some 0.0) ~ecn_delay:20e-6
       ~line_rate:12.5e9 ());
  check_code "bad line rate" "SIM002"
    (Check_sim.check_cc_params ~ecn_delay:20e-6 ~line_rate:0.0 ())

let test_corrupt_fabric_link () =
  let fabric = ls () in
  check_no_errors "healthy fabric" (Check_sim.check_fabric fabric);
  let g = Fabric.graph fabric in
  let l = Graph.link g 0 in
  (* A zero-capacity link would serialize forever. *)
  let forged =
    Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:1 ~link_bw:0.0 ()
  in
  Alcotest.(check bool) "original untouched" true (l.Graph.bandwidth > 0.0);
  check_code "zero-capacity links" "SIM001" (Check_sim.check_fabric forged)

let test_corrupt_btree_orphan () =
  let fabric = ft8 () in
  let source, dests = group fabric (Rng.create 15) ~scale:8 in
  let members = List.sort_uniq compare (source :: dests) in
  let bt = Peel_baselines.Binary_tree.schedule fabric ~source ~members in
  check_no_errors "btree before corruption"
    (Check_collective.check_btree bt ~source ~members);
  (* Drop the last logical send: its receiver becomes unreachable. *)
  let edges = bt.Peel_baselines.Binary_tree.edges in
  let corrupt =
    {
      bt with
      Peel_baselines.Binary_tree.edges =
        List.filteri (fun i _ -> i < List.length edges - 1) edges;
    }
  in
  let ds = Check_collective.check_btree corrupt ~source ~members in
  check_code "orphaned member" "COL003" ds;
  check_code "edge count" "COL002" ds

let test_assert_valid_raises () =
  let ds =
    [ D.errorf ~code:"PLAN007" ~loc:"header" "header is 9 B, over budget" ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "raises Failure" true
    (try
       Peel_check.assert_valid ~what:"unit test" ds;
       false
     with Failure msg ->
       (* The raised message must name the diagnostic code. *)
       contains msg "PLAN007");
  (* Warnings alone never raise. *)
  Peel_check.assert_valid ~what:"unit test"
    [ D.warningf ~code:"SIM002" ~loc:"dcqcn" "guard far above 50 us" ]

(* ------------------------------------------------------------------ *)
(* Randomized adversarial mutations                                    *)
(* ------------------------------------------------------------------ *)

let mutate_plan rng (plan : Plan.t) =
  let packets = plan.Plan.packets in
  match Rng.int rng 3 with
  | 0 ->
      (* Drop a packet: its endpoints go undelivered. *)
      let i = Rng.int rng (List.length packets) in
      ("drop packet", { plan with Plan.packets = List.filteri (fun j _ -> j <> i) packets })
  | 1 ->
      (* Duplicate a packet: double delivery. *)
      let i = Rng.int rng (List.length packets) in
      ("duplicate packet", { plan with Plan.packets = List.nth packets i :: packets })
  | _ ->
      (* Forge the header size. *)
      ("forge header", { plan with Plan.header_bytes = plan.Plan.header_bytes + 8 })

let test_adversarial_plan_mutations () =
  let rng = Rng.create 99 in
  for trial = 1 to 25 do
    let fabric = ft8 () in
    let source, dests = group fabric rng ~scale:(8 + Rng.int rng 48) in
    let plan = Peel.plan fabric ~source ~dests in
    check_no_errors
      (Printf.sprintf "trial %d: valid plan certified" trial)
      (Check_plan.check fabric plan);
    let name, corrupt = mutate_plan rng plan in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: %s caught" trial name)
      true
      (D.has_errors (Check_plan.check fabric corrupt))
  done

let test_adversarial_tree_mutations () =
  let rng = Rng.create 100 in
  for trial = 1 to 25 do
    let fabric = ls () in
    let g = Fabric.graph fabric in
    let source, dests = group fabric rng ~scale:(4 + Rng.int rng 12) in
    match Peel.multicast_tree fabric ~source ~dests with
    | None -> Alcotest.fail "no tree on a healthy fabric"
    | Some tree ->
        check_no_errors
          (Printf.sprintf "trial %d: valid tree certified" trial)
          (Check_tree.check ~fabric g tree ~source ~dests);
        let caught =
          if Rng.bool rng then begin
            (* Break a random edge the tree rides. *)
            let lids = Tree.link_ids tree in
            Graph.fail_link g (List.nth lids (Rng.int rng (List.length lids)));
            let ds = Check_tree.check g tree ~source ~dests in
            Graph.restore_all g;
            D.has_code "TREE002" ds
          end
          else begin
            (* Claim an extra destination the tree never reaches. *)
            let outsider =
              Array.to_list (Fabric.endpoints fabric)
              |> List.find (fun e -> not (Tree.mem tree e))
            in
            D.has_code "TREE003"
              (Check_tree.check g tree ~source ~dests:(outsider :: dests))
          end
        in
        Alcotest.(check bool)
          (Printf.sprintf "trial %d: mutation caught" trial)
          true caught
  done

let () =
  Alcotest.run "peel_check"
    [
      ( "clean",
        [
          Alcotest.test_case "fat-tree scenario" `Quick test_scenario_clean_fat_tree;
          Alcotest.test_case "leaf-spine scenario" `Quick test_scenario_clean_leaf_spine;
          Alcotest.test_case "10% failures" `Quick test_scenario_clean_under_failures;
          Alcotest.test_case "budgeted cover" `Quick test_scenario_clean_budgeted;
          Alcotest.test_case "theorem 2.5 bound holds" `Quick
            test_layer_peel_within_theorem_bound;
        ] );
      ( "corruptions",
        [
          Alcotest.test_case "broken tree edge" `Quick test_corrupt_tree_broken_edge;
          Alcotest.test_case "duplicated receiver (plan)" `Quick
            test_corrupt_plan_duplicate_receiver;
          Alcotest.test_case "duplicated receiver (ring)" `Quick
            test_corrupt_ring_duplicate_receiver;
          Alcotest.test_case "over-covering prefix" `Quick
            test_corrupt_plan_overcovering_prefix;
          Alcotest.test_case "header over 8 B" `Quick test_corrupt_plan_header_budget;
          Alcotest.test_case "rule table over k-1" `Quick test_corrupt_rules_over_budget;
          Alcotest.test_case "chunk-count mismatch" `Quick
            test_corrupt_chunk_conservation;
          Alcotest.test_case "tree cost bound" `Quick test_corrupt_tree_cost_bound;
          Alcotest.test_case "simulation outcome" `Quick test_corrupt_outcome;
          Alcotest.test_case "simulation trace" `Quick test_corrupt_trace;
          Alcotest.test_case "cc params" `Quick test_corrupt_cc_params;
          Alcotest.test_case "fabric links" `Quick test_corrupt_fabric_link;
          Alcotest.test_case "btree orphan" `Quick test_corrupt_btree_orphan;
          Alcotest.test_case "assert_valid" `Quick test_assert_valid_raises;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "random plan mutations" `Quick
            test_adversarial_plan_mutations;
          Alcotest.test_case "random tree mutations" `Quick
            test_adversarial_tree_mutations;
        ] );
    ]
