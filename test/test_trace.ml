(* Tests for the observability layer: trace conservation and
   determinism through a real simulation, the sampling knob, verbosity
   levels, DCQCN event attribution, and the JSON/CSV export
   round-trips. *)

open Peel_topology
open Peel_workload
open Peel_collective
module Trace = Peel_sim.Trace
module Json = Peel_util.Json
module Rng = Peel_util.Rng

let fat4 () = Fabric.fat_tree ~k:4 ~hosts_per_tor:2 ~gpus_per_host:4 ()

let workload fabric ~seed ~n =
  Spec.poisson_broadcasts fabric (Rng.create seed) ~n ~scale:16 ~bytes:2e6
    ~load:0.3 ()

let chunks = 8

let traced_run ?(level = Trace.Full) ?(sample = 1) ?(seed = 5) ?(n = 3)
    ?(scheme = Scheme.Peel) () =
  let fabric = fat4 () in
  let trace = Trace.create ~level ~sample () in
  let cs = workload fabric ~seed ~n in
  let outcome = Runner.run ~chunks ~trace fabric scheme cs in
  let expected =
    chunks
    * List.fold_left
        (fun acc (c : Spec.collective) -> acc + List.length c.Spec.dests)
        0 cs
  in
  (trace, outcome, expected)

(* ------------------------------------------------------------------ *)
(* Conservation and determinism                                        *)
(* ------------------------------------------------------------------ *)

let test_conservation () =
  let trace, _, expected = traced_run () in
  let c = Trace.counters trace in
  Alcotest.(check int) "deliveries traced = chunks x receivers" expected
    c.Trace.deliveries;
  Alcotest.(check (list string))
    "check_trace clean" []
    (List.map Peel_check.Diagnostic.to_string
       (Peel_check.Check_sim.check_trace ~expected_deliveries:expected trace))

let test_conservation_all_schemes () =
  List.iter
    (fun scheme ->
      let trace, _, expected = traced_run ~scheme () in
      let c = Trace.counters trace in
      Alcotest.(check int)
        (Scheme.to_string scheme ^ " conserves chunks")
        expected c.Trace.deliveries)
    Scheme.all

let test_determinism () =
  let ta, _, _ = traced_run () and tb, _, _ = traced_run () in
  let a = Trace.counters ta and b = Trace.counters tb in
  Alcotest.(check int) "events" (Trace.num_events ta) (Trace.num_events tb);
  Alcotest.(check int) "reservations" a.Trace.reservations b.Trace.reservations;
  Alcotest.(check (float 0.0)) "bytes" a.Trace.bytes_reserved b.Trace.bytes_reserved;
  Alcotest.(check int) "deliveries" a.Trace.deliveries b.Trace.deliveries;
  Alcotest.(check int) "engine events" a.Trace.engine_events b.Trace.engine_events;
  let ea = Trace.events ta and eb = Trace.events tb in
  Array.iteri
    (fun i (ev : Trace.event) ->
      Alcotest.(check (float 0.0)) "event times match" ev.Trace.time
        eb.(i).Trace.time)
    ea

let test_monotone_timestamps () =
  let trace, _, _ = traced_run () in
  let last = ref neg_infinity in
  Array.iter
    (fun (ev : Trace.event) ->
      Alcotest.(check bool) "non-decreasing" true (ev.Trace.time >= !last);
      last := ev.Trace.time)
    (Trace.events trace)

let test_engine_counters () =
  let trace, outcome, _ = traced_run () in
  let c = Trace.counters trace in
  Alcotest.(check int) "engine events recorded" outcome.Runner.events
    c.Trace.engine_events;
  Alcotest.(check bool) "queue high-water positive" true
    (c.Trace.engine_max_pending > 0)

let test_telemetry_agrees () =
  (* The per-link detail Telemetry merges in must re-aggregate to the
     trace's own counters. *)
  let trace, outcome, _ = traced_run () in
  let c = Trace.counters trace in
  let reports = Peel_sim.Telemetry.reports outcome.Runner.telemetry in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
  Alcotest.(check int) "reservations"
    c.Trace.reservations
    (sum (fun (r : Peel_sim.Telemetry.link_report) ->
         r.Peel_sim.Telemetry.reservations));
  Alcotest.(check int) "ecn marks" c.Trace.ecn_marks
    (sum (fun (r : Peel_sim.Telemetry.link_report) ->
         r.Peel_sim.Telemetry.ecn_marks));
  Alcotest.(check (float 1e-6)) "bytes" c.Trace.bytes_reserved
    (Array.fold_left
       (fun acc (r : Peel_sim.Telemetry.link_report) ->
         acc +. r.Peel_sim.Telemetry.bytes)
       0.0 reports)

let test_conservation_under_loss () =
  (* Lossy links exercise the repair path: every orphaned destination
     must still be delivered exactly once, and the drops/repairs must
     themselves be traced. *)
  let fabric = fat4 () in
  let trace = Trace.create () in
  let cs = workload fabric ~seed:11 ~n:2 in
  let loss = Peel_sim.Transfer.loss_model ~seed:3 ~prob:0.05 () in
  let outcome =
    Runner.run ~chunks ~trace ~loss
      ~cc:(Broadcast.Dcqcn { guard = Some 50e-6; ecn_delay = 20e-6 })
      fabric Scheme.Peel cs
  in
  let expected =
    chunks
    * List.fold_left
        (fun acc (c : Spec.collective) -> acc + List.length c.Spec.dests)
        0 cs
  in
  let c = Trace.counters trace in
  Alcotest.(check int) "conserved despite loss" expected c.Trace.deliveries;
  Alcotest.(check bool) "losses traced" true (c.Trace.drops > 0);
  Alcotest.(check bool) "repairs traced" true (c.Trace.retransmits > 0);
  Alcotest.(check (list string))
    "check_trace clean" []
    (List.map Peel_check.Diagnostic.to_string
       (Peel_check.Check_sim.check_trace ~expected_deliveries:expected trace));
  ignore outcome

(* ------------------------------------------------------------------ *)
(* Levels and sampling                                                 *)
(* ------------------------------------------------------------------ *)

let test_sampling () =
  let full, _, _ = traced_run ~sample:1 ()
  and sampled, _, _ = traced_run ~sample:4 () in
  let cf = Trace.counters full and cs = Trace.counters sampled in
  Alcotest.(check int) "counters exact under sampling" cf.Trace.reservations
    cs.Trace.reservations;
  Alcotest.(check int) "deliveries unaffected" cf.Trace.deliveries
    cs.Trace.deliveries;
  let reserve_events t =
    Array.fold_left
      (fun acc (ev : Trace.event) ->
        match ev.Trace.kind with Trace.Reserve _ -> acc + 1 | _ -> acc)
      0 (Trace.events t)
  in
  Alcotest.(check int) "reserve events + skips = reservations"
    cs.Trace.reservations
    (reserve_events sampled + Trace.sampled_out sampled);
  Alcotest.(check bool) "sampling shrinks the log" true
    (reserve_events sampled < reserve_events full)

let test_counters_level () =
  let trace, _, expected = traced_run ~level:Trace.Counters () in
  Alcotest.(check int) "no events" 0 (Trace.num_events trace);
  Alcotest.(check int) "counters still exact" expected
    (Trace.counters trace).Trace.deliveries;
  Alcotest.(check (list string))
    "check_trace clean below Full" []
    (List.map Peel_check.Diagnostic.to_string
       (Peel_check.Check_sim.check_trace ~expected_deliveries:expected trace))

let test_null_trace_untouched () =
  let fabric = fat4 () in
  let cs = workload fabric ~seed:5 ~n:2 in
  let outcome = Runner.run ~chunks fabric Scheme.Peel cs in
  Alcotest.(check bool) "null trace disabled" false
    (Trace.enabled outcome.Runner.trace);
  let c = Trace.counters Trace.null in
  Alcotest.(check int) "null counters stay zero" 0 c.Trace.deliveries;
  Alcotest.(check int) "null records nothing" 0 (Trace.num_events Trace.null)

let test_create_validates_sample () =
  Alcotest.(check bool) "sample < 1 rejected" true
    (try ignore (Trace.create ~sample:0 ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* DCQCN attribution                                                   *)
(* ------------------------------------------------------------------ *)

let test_dcqcn_events () =
  let open Peel_sim in
  let trace = Trace.create () in
  let cc = Dcqcn.create ~trace ~flow:7 ~line_rate:1e9 () in
  Dcqcn.on_cnp cc ~now:0.0;
  Dcqcn.on_cnp cc ~now:1e-6;
  (* inside the 50 us guard *)
  Dcqcn.on_cnp cc ~now:1.0;
  let c = Trace.counters trace in
  Alcotest.(check int) "cnps" 3 c.Trace.cnps;
  Alcotest.(check int) "rate cuts" 2 c.Trace.rate_cuts;
  Alcotest.(check int) "guard holds" 1 c.Trace.guard_holds;
  let flows = Trace.flow_stats trace in
  match flows with
  | [ f ] ->
      Alcotest.(check int) "flow id" 7 f.Trace.f_flow;
      Alcotest.(check int) "flow cnps" 3 f.Trace.f_cnps;
      Alcotest.(check int) "flow guard holds" 1 f.Trace.f_guard_holds
  | _ -> Alcotest.fail "expected exactly one flow"

let test_flow_stats_latency () =
  let trace = Trace.create () in
  Trace.release trace ~time:1.0 ~flow:0 ~chunk:0 ~rate:1e9;
  Trace.delivery trace ~time:1.5 ~node:3 ~flow:0 ~chunk:0;
  Trace.delivery trace ~time:2.0 ~node:4 ~flow:0 ~chunk:0;
  Trace.retransmit trace ~time:2.5 ~flow:(-1) ~node:(-1);
  match Trace.flow_stats trace with
  | [ f ] ->
      Alcotest.(check int) "unattributed flow excluded" 0 f.Trace.f_flow;
      Alcotest.(check (float 1e-12)) "mean latency" 0.75
        f.Trace.f_mean_chunk_latency;
      Alcotest.(check (float 1e-12)) "max latency" 1.0 f.Trace.f_max_chunk_latency;
      Alcotest.(check (float 0.0)) "first delivery" 1.5 f.Trace.f_first_delivery;
      Alcotest.(check (float 0.0)) "last delivery" 2.0 f.Trace.f_last_delivery
  | _ -> Alcotest.fail "expected exactly one flow"

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("JSON parse failed: " ^ e)

(* ------------------------------------------------------------------ *)
(* Loss accounting: counters vs the Full event log                     *)
(* ------------------------------------------------------------------ *)

let count_kind trace p =
  Array.fold_left
    (fun acc (e : Trace.event) -> if p e.Trace.kind then acc + 1 else acc)
    0 (Trace.events trace)

let test_loss_counters_agree_with_events () =
  (* The drop/retransmit counters must equal the number of Drop and
     Retransmit events in the Full log, and every repair send — whether
     a hop-local selective repeat inside Transfer or an end-to-end NACK
     repair in Broadcast — must be accounted in [loss.retransmissions]. *)
  let fabric = fat4 () in
  let trace = Trace.create ~level:Trace.Full () in
  let cs = workload fabric ~seed:11 ~n:2 in
  let loss = Peel_sim.Transfer.loss_model ~seed:3 ~prob:0.05 () in
  let _ = Runner.run ~chunks ~trace ~loss fabric Scheme.Peel cs in
  let c = Trace.counters trace in
  Alcotest.(check bool) "drops happened" true (c.Trace.drops > 0);
  Alcotest.(check int) "drop events = drops counter" c.Trace.drops
    (count_kind trace (function Trace.Drop _ -> true | _ -> false));
  Alcotest.(check int) "retransmit events = retransmits counter"
    c.Trace.retransmits
    (count_kind trace (function Trace.Retransmit _ -> true | _ -> false));
  Alcotest.(check int) "loss model counts every repair send"
    c.Trace.retransmits loss.Peel_sim.Transfer.retransmissions

(* ------------------------------------------------------------------ *)
(* Failure events: fail / recover / replan                             *)
(* ------------------------------------------------------------------ *)

let test_failover_event_kinds_roundtrip () =
  (* Fail (then recover) a link the PEEL tree actually uses mid-run:
     the trace must carry Link_fail, Link_recover and Replan events
     whose counts match the counters and whose JSON payloads survive a
     parse round-trip. *)
  let fabric = fat4 () in
  let g = Fabric.graph fabric in
  let eps = Fabric.endpoints fabric in
  let members = Array.to_list (Array.sub eps 0 8) in
  let source = List.hd members in
  let dests = List.tl members in
  let spec =
    { Spec.id = 0; arrival = 0.0; source; dests; members; bytes = 1e6 }
  in
  let clean =
    List.hd (Failover.run fabric Failover.Peel [ spec ]).Runner.ccts
  in
  let tree =
    Option.get (Peel_steiner.Layer_peel.build g ~source ~dests)
  in
  (* Pick a tree link whose loss keeps the group connected, so the
     controller can re-peel rather than stall on a partition. *)
  let victim =
    List.find
      (fun l ->
        Graph.fail_link g l;
        let ok = Graph.connected g (source :: dests) in
        Graph.restore_all g;
        ok)
      (Peel_steiner.Tree.link_ids tree)
  in
  let faults =
    Peel_sim.Fault.schedule_of_failures ~at:(0.3 *. clean)
      ~recover_at:(0.8 *. clean) [ victim ]
  in
  let trace = Trace.create ~level:Trace.Full () in
  let out = Failover.run ~trace ~faults fabric Failover.Peel [ spec ] in
  let c = Trace.counters trace in
  Alcotest.(check int) "one fail traced" 1 c.Trace.link_fails;
  Alcotest.(check int) "one recovery traced" 1 c.Trace.link_recovers;
  Alcotest.(check bool) "controller replanned" true (c.Trace.replans >= 1);
  Alcotest.(check int) "fail events = counter" c.Trace.link_fails
    (count_kind trace (function Trace.Link_fail _ -> true | _ -> false));
  Alcotest.(check int) "recover events = counter" c.Trace.link_recovers
    (count_kind trace (function Trace.Link_recover _ -> true | _ -> false));
  Alcotest.(check int) "replan events = counter" c.Trace.replans
    (count_kind trace (function Trace.Replan _ -> true | _ -> false));
  Alcotest.(check bool) "failed run is no faster" true
    (List.hd out.Runner.ccts >= clean);
  (* JSON payloads: the failure kinds carry their link / flow / cost. *)
  let v = parse_ok (Json.to_string (Trace.events_to_json trace)) in
  let evs = Option.get (Json.get_arr v) in
  let of_kind k =
    List.filter
      (fun ev -> Option.bind (Json.member "kind" ev) Json.get_str = Some k)
      evs
  in
  let num_field ev k = Option.bind (Json.member k ev) Json.get_num in
  List.iter
    (fun ev ->
      Alcotest.(check (option (float 0.0)))
        "fail/recover carries the duplex id"
        (Some (float_of_int (victim land lnot 1)))
        (num_field ev "link"))
    (of_kind "link_fail" @ of_kind "link_recover");
  List.iter
    (fun ev ->
      Alcotest.(check bool) "replan carries flow and cost" true
        (num_field ev "flow" = Some 0.0 && num_field ev "cost" <> None))
    (of_kind "replan");
  (* The lint must accept the log, SIM007 included. *)
  Alcotest.(check (list string))
    "check_trace clean" []
    (List.map Peel_check.Diagnostic.to_string
       (Peel_check.Check_sim.check_trace
          ~expected_deliveries:(chunks * List.length dests)
          trace))

(* ------------------------------------------------------------------ *)
(* Export round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_counters_json_roundtrip () =
  let trace, _, expected = traced_run () in
  let v = parse_ok (Json.to_string (Trace.counters_to_json trace)) in
  let get k =
    match Option.bind (Json.member k v) Json.get_num with
    | Some x -> int_of_float x
    | None -> Alcotest.fail ("missing counter " ^ k)
  in
  Alcotest.(check int) "deliveries" expected (get "deliveries");
  Alcotest.(check int) "reservations"
    (Trace.counters trace).Trace.reservations (get "reservations");
  Alcotest.(check int) "engine events"
    (Trace.counters trace).Trace.engine_events (get "engine_events")

let test_events_json_roundtrip () =
  let trace, _, _ = traced_run () in
  let v = parse_ok (Json.to_string (Trace.events_to_json trace)) in
  match Json.get_arr v with
  | None -> Alcotest.fail "events JSON is not an array"
  | Some evs ->
      Alcotest.(check int) "every event exported" (Trace.num_events trace)
        (List.length evs);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "event has time" true
            (Option.bind (Json.member "t" ev) Json.get_num <> None);
          Alcotest.(check bool) "event has kind" true
            (Option.bind (Json.member "kind" ev) Json.get_str <> None))
        evs

let test_events_csv () =
  let trace, _, _ = traced_run () in
  let csv = Trace.events_csv trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: _ -> Alcotest.(check string) "header" Trace.csv_header header
  | [] -> Alcotest.fail "empty CSV");
  Alcotest.(check int) "one line per event"
    (Trace.num_events trace + 1)
    (List.length lines);
  let cols = List.length (String.split_on_char ',' Trace.csv_header) in
  List.iter
    (fun line ->
      Alcotest.(check int) "column count"
        cols
        (List.length (String.split_on_char ',' line)))
    lines

let () =
  Alcotest.run "peel_trace"
    [
      ( "conservation",
        [
          Alcotest.test_case "chunks conserved" `Quick test_conservation;
          Alcotest.test_case "all schemes conserve" `Quick
            test_conservation_all_schemes;
          Alcotest.test_case "conserved under loss" `Quick
            test_conservation_under_loss;
          Alcotest.test_case "deterministic rerun" `Quick test_determinism;
          Alcotest.test_case "monotone timestamps" `Quick test_monotone_timestamps;
          Alcotest.test_case "engine counters" `Quick test_engine_counters;
          Alcotest.test_case "telemetry agrees" `Quick test_telemetry_agrees;
        ] );
      ( "levels",
        [
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "counters level" `Quick test_counters_level;
          Alcotest.test_case "null trace" `Quick test_null_trace_untouched;
          Alcotest.test_case "sample validated" `Quick test_create_validates_sample;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "dcqcn events" `Quick test_dcqcn_events;
          Alcotest.test_case "flow latency" `Quick test_flow_stats_latency;
        ] );
      ( "export",
        [
          Alcotest.test_case "loss counters vs events" `Quick
            test_loss_counters_agree_with_events;
          Alcotest.test_case "failover event kinds" `Quick
            test_failover_event_kinds_roundtrip;
          Alcotest.test_case "counters json" `Quick test_counters_json_roundtrip;
          Alcotest.test_case "events json" `Quick test_events_json_roundtrip;
          Alcotest.test_case "events csv" `Quick test_events_csv;
        ] );
    ]
