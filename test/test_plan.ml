(* Tests for the core PEEL library: hierarchical prefix packetization
   (Plan), the facade, and integration with trees and rules. *)

open Peel_topology
module Plan = Peel.Plan
module Cover = Peel_prefix.Cover
module Rng = Peel_util.Rng

let fat8 () = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 ()

let endpoints_range fabric lo n =
  let eps = Fabric.endpoints fabric in
  List.init n (fun i -> eps.(lo + i))

(* ------------------------------------------------------------------ *)
(* Plan construction                                                   *)
(* ------------------------------------------------------------------ *)

let test_plan_single_full_pod () =
  (* One whole pod (128 GPUs in an 8-ary tree with 8 gpus/host): the
     pod's 4 ToRs collapse to one prefix, one packet. *)
  let f = fat8 () in
  let members = endpoints_range f 0 128 in
  let source = List.hd members in
  let dests = List.tl members in
  let plan = Plan.build f ~source ~dests in
  Alcotest.(check int) "one packet" 1 (Plan.num_packets plan);
  Alcotest.(check int) "no waste" 0 (Plan.waste_tor_count plan);
  (match Plan.validate f plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let p = List.hd plan.Plan.packets in
  Alcotest.(check int) "tor prefix covers pod" 0 p.Plan.tor_prefix.Cover.len

let test_plan_half_fabric_contiguous () =
  (* 512 GPUs = pods 0..3 fully: one pod-prefix (4 pods) x one
     tor-prefix => a single packet, like the Fig. 5 setup. *)
  let f = fat8 () in
  let members = endpoints_range f 0 512 in
  let source = List.hd members in
  let plan = Plan.build f ~source ~dests:(List.tl members) in
  Alcotest.(check int) "one packet" 1 (Plan.num_packets plan);
  let p = List.hd plan.Plan.packets in
  Alcotest.(check (list int)) "pods 0-3" [ 0; 1; 2; 3 ] p.Plan.pods

let test_plan_misaligned_fragments () =
  (* Start mid-pod: the group spans partial pods with different ToR
     signatures -> more packets, still exact. *)
  let f = fat8 () in
  let members = endpoints_range f 64 128 in
  let source = List.hd members in
  let plan = Plan.build f ~source ~dests:(List.tl members) in
  Alcotest.(check bool) "more than one packet" true (Plan.num_packets plan > 1);
  Alcotest.(check int) "still exact" 0 (Plan.waste_tor_count plan);
  match Plan.validate f plan with Ok () -> () | Error e -> Alcotest.fail e

let test_plan_paper_prefix_example () =
  (* Destinations on ToR ids {2,3,4,5,6,7} of one pod in a 16-ary tree
     (m=3): the §3.2 example — covers 1** and 01*. *)
  let f = Fabric.fat_tree ~k:16 ~hosts_per_tor:1 () in
  let tors = Fabric.tors_of_pod f 0 in
  let hosts_of tor =
    match f with
    | Fabric.Ft ft -> ft.Fat_tree.hosts_of_tor.(Peel_topology.Fat_tree.tor_index ft tor)
    | Fabric.Ls _ | Fabric.Rl _ | Fabric.Zo _ -> assert false
  in
  let dests = List.concat_map (fun i -> Array.to_list (hosts_of tors.(i))) [ 2; 3; 4; 5; 6; 7 ] in
  (* Source in the same pod, ToR 0. *)
  let source = (hosts_of tors.(0)).(0) in
  let plan = Plan.build f ~source ~dests in
  let tor_prefixes =
    List.map
      (fun p -> Cover.to_string ~m:3 p.Plan.tor_prefix)
      plan.Plan.packets
    |> List.sort compare
  in
  Alcotest.(check (list string)) "paper covers" [ "01*"; "1**" ] tor_prefixes

let test_plan_header_bytes () =
  (* 8-ary fat-tree: tor field m=2 + 2 bits len; pod field 3 + 2: 9 bits
     -> 2 bytes, comfortably under the paper's 8 B budget. *)
  let f = fat8 () in
  Alcotest.(check int) "2 bytes" 2 (Plan.header_bytes_for f);
  let ls = Fabric.leaf_spine ~spines:16 ~leaves:48 ~hosts_per_leaf:2 () in
  (* 48 leaves -> m=6 + 3 bits len = 9 bits -> 2 bytes; single pod. *)
  Alcotest.(check int) "leaf-spine 2 bytes" 2 (Plan.header_bytes_for ls)

let test_plan_budget_overcovers () =
  (* Alternating racks in one pod of a 16-ary tree (m=3): exact needs 4
     prefixes; budget 1 covers the whole pod and wastes 4 racks. *)
  let f = Fabric.fat_tree ~k:16 ~hosts_per_tor:1 () in
  let tors = Fabric.tors_of_pod f 0 in
  let hosts_of tor =
    match f with
    | Fabric.Ft ft -> ft.Fat_tree.hosts_of_tor.(Peel_topology.Fat_tree.tor_index ft tor)
    | Fabric.Ls _ | Fabric.Rl _ | Fabric.Zo _ -> assert false
  in
  let dests = List.concat_map (fun i -> Array.to_list (hosts_of tors.(i))) [ 0; 2; 4; 6 ] in
  (* Source on a non-member ToR so all four target racks stay targets. *)
  let source = (hosts_of tors.(1)).(0) in
  let exact = Plan.build f ~source ~dests in
  Alcotest.(check int) "exact packets" 4 (Plan.num_packets exact);
  Alcotest.(check int) "exact no waste" 0 (Plan.waste_tor_count exact);
  let tight = Plan.build ~budget:1 f ~source ~dests in
  Alcotest.(check int) "one packet" 1 (Plan.num_packets tight);
  Alcotest.(check int) "wastes 4 racks" 4 (Plan.waste_tor_count tight);
  match Plan.validate f tight with Ok () -> () | Error e -> Alcotest.fail e

let test_plan_leaf_spine_single_pod () =
  let ls = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2 () in
  let hosts = Fabric.hosts ls in
  let members = List.init 8 (fun i -> hosts.(i)) in
  let source = List.hd members in
  let plan = Plan.build ls ~source ~dests:(List.tl members) in
  List.iter
    (fun p ->
      Alcotest.(check bool) "no pod prefix" true (p.Plan.pod_prefix = None))
    plan.Plan.packets;
  match Plan.validate ls plan with Ok () -> () | Error e -> Alcotest.fail e

let test_packet_trees_valid () =
  let f = fat8 () in
  let members = endpoints_range f 100 64 in
  let source = List.hd members in
  let dests = List.tl members in
  let plan = Plan.build f ~source ~dests in
  List.iter
    (fun packet ->
      match Plan.packet_tree f ~source packet with
      | None -> Alcotest.fail "packet tree missing"
      | Some tree -> (
          match
            Peel_steiner.Tree.validate (Fabric.graph f) tree
              ~dests:packet.Plan.endpoints
          with
          | Ok () -> ()
          | Error e -> Alcotest.fail e))
    plan.Plan.packets

(* Property: plans partition the destination set exactly for arbitrary
   member subsets. *)
let prop_plan_partitions =
  QCheck.Test.make ~name:"plan partitions destinations" ~count:50
    QCheck.(int_range 0 10000)
    (fun seed ->
      let f = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
      let rng = Rng.create seed in
      let eps = Fabric.endpoints f in
      let n = Array.length eps in
      let k = 2 + Rng.int rng (n - 2) in
      let members =
        Rng.sample_without_replacement rng n k |> List.map (fun i -> eps.(i))
      in
      let source = List.nth members (Rng.int rng (List.length members)) in
      let dests = List.filter (fun m -> m <> source) members in
      let plan = Plan.build f ~source ~dests in
      Plan.validate f plan = Ok ()
      && Plan.waste_tor_count plan = 0
      && List.sort compare (List.concat_map (fun p -> p.Plan.endpoints) plan.Plan.packets)
         = List.sort compare dests)

(* ------------------------------------------------------------------ *)
(* Facade                                                              *)
(* ------------------------------------------------------------------ *)

let test_facade_multicast_tree_symmetric () =
  let f = fat8 () in
  let eps = Fabric.endpoints f in
  let dests = [ eps.(10); eps.(200); eps.(900) ] in
  match Peel.multicast_tree f ~source:eps.(0) ~dests with
  | None -> Alcotest.fail "expected tree"
  | Some tree -> (
      match Peel.Tree.validate (Fabric.graph f) tree ~dests with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_facade_multicast_tree_asymmetric () =
  let f = Fabric.leaf_spine ~spines:4 ~leaves:6 ~hosts_per_leaf:2 () in
  let rng = Rng.create 3 in
  let _ = Fabric.fail_random f ~rng ~tier:`All ~fraction:0.2 () in
  let hosts = Fabric.hosts f in
  let dests = [ hosts.(3); hosts.(7); hosts.(11) ] in
  (match Peel.multicast_tree f ~source:hosts.(0) ~dests with
  | None -> Alcotest.fail "expected tree (hosts stay connected)"
  | Some tree -> (
      match Peel.Tree.validate (Fabric.graph f) tree ~dests with
      | Ok () -> ()
      | Error e -> Alcotest.fail e));
  Graph.restore_all (Fabric.graph f)

let test_facade_switch_rules () =
  (* 8-ary: m=2 -> 7 rules (= k-1). 64-ary: 63. *)
  Alcotest.(check int) "k=8" 7 (Peel.switch_rules (fat8 ()));
  let f64 = Fabric.fat_tree ~k:64 ~hosts_per_tor:1 () in
  Alcotest.(check int) "k=64 -> 63 rules" 63 (Peel.switch_rules f64)

let test_facade_state_table_consistent () =
  let f = fat8 () in
  Alcotest.(check int) "table size = switch_rules" (Peel.switch_rules f)
    (Peel.Rules.size (Peel.state_table f))

let test_facade_header_bytes_small () =
  let f = fat8 () in
  Alcotest.(check bool) "< 8 B" true (Peel.header_bytes f < 8)

(* ------------------------------------------------------------------ *)
(* Dataplane                                                           *)
(* ------------------------------------------------------------------ *)

let test_dataplane_matches_plan () =
  let f = fat8 () in
  let members = endpoints_range f 200 96 in
  let source = List.hd members in
  let plan = Plan.build f ~source ~dests:(List.tl members) in
  match Peel.Dataplane.verify f plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_dataplane_budgeted_plan () =
  (* Over-covering plans must also verify: waste racks are part of the
     data plane's delivery set. *)
  let f = Fabric.fat_tree ~k:16 ~hosts_per_tor:1 () in
  let tors = Fabric.tors_of_pod f 0 in
  let hosts_of tor =
    match f with
    | Fabric.Ft ft -> ft.Fat_tree.hosts_of_tor.(Peel_topology.Fat_tree.tor_index ft tor)
    | Fabric.Ls _ | Fabric.Rl _ | Fabric.Zo _ -> assert false
  in
  let dests = List.concat_map (fun i -> Array.to_list (hosts_of tors.(i))) [ 0; 2; 4; 6 ] in
  let source = (hosts_of tors.(1)).(0) in
  let plan = Plan.build ~budget:1 f ~source ~dests in
  (match Peel.Dataplane.verify f plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let deliveries = Peel.Dataplane.deliver f plan in
  Alcotest.(check int) "one packet delivery" 1 (List.length deliveries);
  Alcotest.(check int) "whole pod reached" 8
    (List.length (List.hd deliveries).Peel.Dataplane.tors_reached)

let test_dataplane_leaf_spine () =
  let ls = Fabric.leaf_spine ~spines:4 ~leaves:48 ~hosts_per_leaf:2 () in
  let hosts = Fabric.hosts ls in
  let members = List.init 16 (fun i -> hosts.(20 + i)) in
  let source = List.hd members in
  let plan = Plan.build ls ~source ~dests:(List.tl members) in
  match Peel.Dataplane.verify ls plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let prop_dataplane_always_verifies =
  QCheck.Test.make ~name:"dataplane executes every plan exactly" ~count:60
    QCheck.(pair (int_range 0 10000) (bool))
    (fun (seed, budgeted) ->
      let f = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
      let rng = Rng.create seed in
      let eps = Fabric.endpoints f in
      let n = Array.length eps in
      let k = 2 + Rng.int rng (n - 2) in
      let members =
        Rng.sample_without_replacement rng n k |> List.map (fun i -> eps.(i))
      in
      let source = List.nth members (Rng.int rng (List.length members)) in
      let dests = List.filter (fun m -> m <> source) members in
      let plan =
        if budgeted then Plan.build ~budget:2 f ~source ~dests
        else Plan.build f ~source ~dests
      in
      Peel.Dataplane.verify f plan = Ok ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_core"
    [
      ( "plan",
        [
          Alcotest.test_case "single full pod" `Quick test_plan_single_full_pod;
          Alcotest.test_case "half fabric contiguous" `Quick test_plan_half_fabric_contiguous;
          Alcotest.test_case "misaligned fragments" `Quick test_plan_misaligned_fragments;
          Alcotest.test_case "paper prefix example" `Quick test_plan_paper_prefix_example;
          Alcotest.test_case "header bytes" `Quick test_plan_header_bytes;
          Alcotest.test_case "budget overcovers" `Quick test_plan_budget_overcovers;
          Alcotest.test_case "leaf-spine single pod" `Quick test_plan_leaf_spine_single_pod;
          Alcotest.test_case "packet trees valid" `Quick test_packet_trees_valid;
          qt prop_plan_partitions;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "matches plan" `Quick test_dataplane_matches_plan;
          Alcotest.test_case "budgeted plan" `Quick test_dataplane_budgeted_plan;
          Alcotest.test_case "leaf-spine" `Quick test_dataplane_leaf_spine;
          qt prop_dataplane_always_verifies;
        ] );
      ( "facade",
        [
          Alcotest.test_case "tree symmetric" `Quick test_facade_multicast_tree_symmetric;
          Alcotest.test_case "tree asymmetric" `Quick test_facade_multicast_tree_asymmetric;
          Alcotest.test_case "switch rules" `Quick test_facade_switch_rules;
          Alcotest.test_case "state table" `Quick test_facade_state_table_consistent;
          Alcotest.test_case "header bytes" `Quick test_facade_header_bytes_small;
        ] );
    ]
