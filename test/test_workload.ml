(* Tests for peel_workload: locality placement, offered-load
   calibration, Poisson arrival generation, fragmentation knob. *)

open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng

let fat8 () = Fabric.fat_tree ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 ()

let test_place_contiguous_aligned () =
  let f = fat8 () in
  let rng = Rng.create 5 in
  let members = Spec.place f rng ~scale:64 () in
  Alcotest.(check int) "64 members" 64 (List.length members);
  (* Contiguous run in the endpoints array (locality order). *)
  let eps = Fabric.endpoints f in
  let pos = Hashtbl.create 1024 in
  Array.iteri (fun i e -> Hashtbl.replace pos e i) eps;
  let indices = List.map (Hashtbl.find pos) members |> List.sort compare in
  let first = List.hd indices in
  List.iteri
    (fun i idx -> Alcotest.(check int) "contiguous" (first + i) idx)
    indices;
  Alcotest.(check int) "server aligned" 0 (first mod 8)

let test_place_full_fabric () =
  let f = fat8 () in
  let rng = Rng.create 1 in
  let members = Spec.place f rng ~scale:1024 () in
  Alcotest.(check int) "everyone" 1024 (List.length members)

let test_place_errors () =
  let f = fat8 () in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "too big" true
    (try ignore (Spec.place f rng ~scale:2048 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too small" true
    (try ignore (Spec.place f rng ~scale:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad fragmentation" true
    (try ignore (Spec.place f rng ~scale:8 ~fragmentation:1.5 ()); false
     with Invalid_argument _ -> true)

let test_place_fragmentation_preserves_count () =
  let f = fat8 () in
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let members = Spec.place f rng ~scale:64 ~fragmentation:0.5 () in
    Alcotest.(check int) "still 64" 64 (List.length members);
    Alcotest.(check int) "distinct" 64 (List.length (List.sort_uniq compare members))
  done

let test_fragmentation_spreads_racks () =
  let f = fat8 () in
  let count_racks members =
    List.map (fun e -> Fabric.attach_tor f e) members
    |> List.sort_uniq compare |> List.length
  in
  let rng = Rng.create 42 in
  let compact = Spec.place f rng ~scale:128 () in
  let spread = Spec.place f rng ~scale:128 ~fragmentation:0.8 () in
  Alcotest.(check bool) "fragmented uses >= racks" true
    (count_racks spread >= count_racks compact)

let test_mean_interarrival_formula () =
  let f = fat8 () in
  (* 1024 endpoints x 12.5e9 B/s capacity; scale 512, 8 MB, load 0.3. *)
  let expect = 8e6 *. 512.0 /. (0.3 *. 1024.0 *. 12.5e9) in
  Alcotest.(check (float 1e-12)) "formula" expect
    (Spec.mean_interarrival f ~scale:512 ~bytes:8e6 ~load:0.3)

let test_poisson_broadcasts_shape () =
  let f = fat8 () in
  let rng = Rng.create 77 in
  let cs = Spec.poisson_broadcasts f rng ~n:50 ~scale:64 ~bytes:1e6 ~load:0.3 () in
  Alcotest.(check int) "50 collectives" 50 (List.length cs);
  let rec check_monotone prev = function
    | [] -> ()
    | (c : Spec.collective) :: rest ->
        Alcotest.(check bool) "arrivals increase" true (c.arrival > prev);
        check_monotone c.arrival rest
  in
  check_monotone (-1.0) cs;
  List.iter
    (fun (c : Spec.collective) ->
      Alcotest.(check int) "ids unique members" 64 (List.length c.members);
      Alcotest.(check bool) "source is member" true (List.mem c.source c.members);
      Alcotest.(check bool) "source not in dests" false (List.mem c.source c.dests);
      Alcotest.(check int) "dests = members - 1" 63 (List.length c.dests))
    cs

let test_poisson_interarrival_statistics () =
  let f = fat8 () in
  let rng = Rng.create 123 in
  let cs = Spec.poisson_broadcasts f rng ~n:3000 ~scale:64 ~bytes:1e6 ~load:0.3 () in
  let mean_expected = Spec.mean_interarrival f ~scale:64 ~bytes:1e6 ~load:0.3 in
  let arr = List.map (fun (c : Spec.collective) -> c.Spec.arrival) cs in
  let last = List.nth arr (List.length arr - 1) in
  let empirical = last /. 3000.0 in
  Alcotest.(check bool) "empirical mean within 10%" true
    (Float.abs (empirical -. mean_expected) /. mean_expected < 0.1)

let test_poisson_deterministic () =
  let f = fat8 () in
  let gen seed =
    Spec.poisson_broadcasts f (Rng.create seed) ~n:10 ~scale:32 ~bytes:1e6
      ~load:0.3 ()
    |> List.map (fun (c : Spec.collective) -> (c.arrival, c.source))
  in
  Alcotest.(check bool) "same seed same workload" true (gen 4 = gen 4);
  Alcotest.(check bool) "different seed differs" true (gen 4 <> gen 5)

let prop_place_members_are_endpoints =
  QCheck.Test.make ~name:"placement picks real endpoints" ~count:50
    QCheck.(pair (int_range 0 10000) (int_range 2 96))
    (fun (seed, scale) ->
      let f = Fabric.leaf_spine ~spines:2 ~leaves:6 ~hosts_per_leaf:2 ~gpus_per_host:8 () in
      let rng = Rng.create seed in
      let members = Spec.place f rng ~scale () in
      let eps = Array.to_list (Fabric.endpoints f) in
      List.length members = scale && List.for_all (fun m -> List.mem m eps) members)

(* ------------------------------------------------------------------ *)
(* Streaming generator + open-loop event streams                       *)
(* ------------------------------------------------------------------ *)

let test_group_gen_matches_batch () =
  (* Seed compatibility: the batch wrapper consumes every broadcast
     draw before any hold draw, so a same-seed caller that previously
     used [poisson_broadcasts] sees the identical schedule — the
     wrapper only adds a departure per group.  (The streaming
     [next_group] interleaves the hold draw per group instead and is
     deliberately NOT draw-for-draw identical to the batch.) *)
  let f = fat8 () in
  let batch =
    Spec.poisson_groups f (Rng.create 1700) ~n:8 ~scale:16 ~bytes:1e6
      ~load:0.4 ~hold:0.05 ~fragmentation:0.5 ()
  in
  let broadcasts =
    Spec.poisson_broadcasts f (Rng.create 1700) ~n:8 ~scale:16 ~bytes:1e6
      ~load:0.4 ~fragmentation:0.5 ()
  in
  Alcotest.(check bool) "identical broadcast schedules" true
    (List.map Spec.collective_of_group batch = broadcasts);
  List.iter
    (fun g ->
      Alcotest.(check bool) "departure after arrival" true
        (g.Spec.g_departure > g.Spec.g_arrival))
    batch

let test_group_gen_resumes () =
  (* Splitting one generator's draw sequence at an arbitrary point
     changes nothing: the generator owns all its state. *)
  let f = fat8 () in
  let gen = Spec.group_gen f (Rng.create 9) ~scale:8 ~bytes:1e6 ~load:0.3 ~hold:0.1 () in
  let a = List.init 3 (fun _ -> Spec.next_group gen) in
  let b = List.init 5 (fun _ -> Spec.next_group gen) in
  let whole =
    let gen = Spec.group_gen f (Rng.create 9) ~scale:8 ~bytes:1e6 ~load:0.3 ~hold:0.1 () in
    List.init 8 (fun _ -> Spec.next_group gen)
  in
  Alcotest.(check bool) "split draw = one draw" true (a @ b = whole)

let stream_tenants =
  [
    Stream.tenant ~rate:300.0 ~scale:6 ~bytes:1e6 ~hold:0.3 ~churn:60.0
      ~sends:30.0 ();
    Stream.tenant ~rate:100.0 ~scale:12 ~bytes:4e6 ~hold:0.2 ~churn:20.0
      ~sends:10.0 ~fragmentation:0.5 ();
  ]

let stream_fabric () =
  Fabric.leaf_spine ~spines:3 ~leaves:6 ~hosts_per_leaf:2 ~gpus_per_host:2 ()

let test_stream_validates () =
  let f = stream_fabric () in
  let reject tenants =
    try
      ignore (Stream.create f (Rng.create 1) ~tenants ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty tenant list" true (reject []);
  Alcotest.(check bool) "all-zero rates" true
    (reject [ Stream.tenant ~rate:0.0 ~scale:4 ~bytes:1e6 ~hold:0.1 () ]);
  Alcotest.(check bool) "scale too small" true
    (reject [ Stream.tenant ~rate:1.0 ~scale:1 ~bytes:1e6 ~hold:0.1 () ]);
  Alcotest.(check bool) "scale beyond the fabric" true
    (reject [ Stream.tenant ~rate:1.0 ~scale:1000 ~bytes:1e6 ~hold:0.1 () ])

let test_stream_deterministic () =
  let events n seed =
    let f = stream_fabric () in
    Stream.take (Stream.create f (Rng.create seed) ~tenants:stream_tenants ()) n
    |> List.map (fun (e : Stream.event) ->
           (e.Stream.ev_time, e.Stream.ev_seq, Stream.kind_to_string e.Stream.ev_kind))
  in
  Alcotest.(check bool) "same seed same stream" true (events 500 3 = events 500 3);
  Alcotest.(check bool) "different seed differs" true (events 500 3 <> events 500 4)

let test_stream_event_order () =
  let f = stream_fabric () in
  let s = Stream.create f (Rng.create 7) ~tenants:stream_tenants () in
  let es = Stream.take s 800 in
  let rec check prev seq = function
    | [] -> ()
    | (e : Stream.event) :: rest ->
        Alcotest.(check bool) "time monotone" true (e.Stream.ev_time >= prev);
        Alcotest.(check int) "seq dense" seq e.Stream.ev_seq;
        check e.Stream.ev_time (seq + 1) rest
  in
  check 0.0 0 es

let test_stream_membership_consistent () =
  (* Replay the stream's events into our own membership table; it must
     agree with [live_members] at every step, joins must add real
     non-members, leaves must never remove the source. *)
  let f = stream_fabric () in
  let eps = Array.to_list (Fabric.endpoints f) in
  let s = Stream.create f (Rng.create 21) ~tenants:stream_tenants () in
  let mine : (int, int list * int) Hashtbl.t = Hashtbl.create 64 in
  for _ = 1 to 1200 do
    let e = Stream.next s in
      (match e.Stream.ev_kind with
      | Stream.Create g ->
          Alcotest.(check bool) "fresh gid" false (Hashtbl.mem mine g.Spec.g_id);
          List.iter
            (fun m ->
              Alcotest.(check bool) "member is an endpoint" true
                (List.mem m eps))
            g.Spec.g_members;
          Hashtbl.replace mine g.Spec.g_id
            (List.sort compare g.Spec.g_members, g.Spec.g_source)
      | Stream.Join { gid; endpoint } ->
          let members, src = Hashtbl.find mine gid in
          Alcotest.(check bool) "join adds a non-member" false
            (List.mem endpoint members);
          Alcotest.(check bool) "join adds an endpoint" true
            (List.mem endpoint eps);
          Hashtbl.replace mine gid (List.sort compare (endpoint :: members), src)
      | Stream.Leave { gid; endpoint } ->
          let members, src = Hashtbl.find mine gid in
          Alcotest.(check bool) "leave removes a member" true
            (List.mem endpoint members);
          Alcotest.(check bool) "leave never removes the source" false
            (endpoint = src);
          Hashtbl.replace mine gid
            (List.filter (fun m -> m <> endpoint) members, src)
      | Stream.Send { gid; bytes } ->
          Alcotest.(check bool) "send targets a live group" true
            (Hashtbl.mem mine gid);
          Alcotest.(check bool) "send bytes positive" true (bytes > 0.0)
      | Stream.Depart { gid } ->
          Alcotest.(check bool) "depart targets a live group" true
            (Hashtbl.mem mine gid);
          Hashtbl.remove mine gid);
      Hashtbl.iter
        (fun gid (members, _) ->
          match Stream.live_members s ~gid with
          | None -> Alcotest.fail "stream dropped a live group"
          | Some ms ->
              Alcotest.(check (list int))
                (Printf.sprintf "group %d membership" gid)
                members ms)
        mine
  done;
  Alcotest.(check (list int)) "live view agrees" (Stream.live_groups s)
    (List.sort compare (Hashtbl.fold (fun gid _ acc -> gid :: acc) mine []))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_workload"
    [
      ( "place",
        [
          Alcotest.test_case "contiguous aligned" `Quick test_place_contiguous_aligned;
          Alcotest.test_case "full fabric" `Quick test_place_full_fabric;
          Alcotest.test_case "errors" `Quick test_place_errors;
          Alcotest.test_case "fragmentation count" `Quick test_place_fragmentation_preserves_count;
          Alcotest.test_case "fragmentation spreads" `Quick test_fragmentation_spreads_racks;
          qt prop_place_members_are_endpoints;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "interarrival formula" `Quick test_mean_interarrival_formula;
          Alcotest.test_case "workload shape" `Quick test_poisson_broadcasts_shape;
          Alcotest.test_case "interarrival statistics" `Slow test_poisson_interarrival_statistics;
          Alcotest.test_case "deterministic" `Quick test_poisson_deterministic;
        ] );
      ( "stream",
        [
          Alcotest.test_case "batch seed-compatible" `Quick test_group_gen_matches_batch;
          Alcotest.test_case "gen resumes" `Quick test_group_gen_resumes;
          Alcotest.test_case "create validates" `Quick test_stream_validates;
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "event order" `Quick test_stream_event_order;
          Alcotest.test_case "membership consistent" `Quick
            test_stream_membership_consistent;
        ] );
    ]
