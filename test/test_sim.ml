(* Tests for peel_sim: event engine ordering, FIFO link reservations,
   store-and-forward transfer timing, and the DCQCN-lite guard timer. *)

open Peel_topology
open Peel_sim

let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e 2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e 1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e 3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "now" 3.0 (Engine.now e);
  Alcotest.(check int) "processed" 3 (Engine.events_processed e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e 1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cascading () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule e 1.0 (fun () ->
      incr hits;
      Engine.schedule_in e 0.5 (fun () -> incr hits));
  Engine.run e;
  Alcotest.(check int) "both ran" 2 !hits;
  check_float "now" 1.5 (Engine.now e)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e 1.0 (fun () ->
      Alcotest.(check bool) "past raises" true
        (try Engine.schedule e 0.5 (fun () -> ()); false
         with Invalid_argument _ -> true));
  Engine.run e

let test_engine_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule e 1.0 (fun () -> incr hits);
  Engine.schedule e 5.0 (fun () -> incr hits);
  Engine.run ~until:2.0 e;
  Alcotest.(check int) "only first" 1 !hits;
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 2 !hits

(* ------------------------------------------------------------------ *)
(* Link_state                                                          *)
(* ------------------------------------------------------------------ *)

let two_node_graph ?(bw = 1e9) ?(lat = 1e-6) () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:0 in
  let c = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:1 in
  let l = Graph.Builder.add_duplex b ~latency:lat ~bandwidth:bw a c in
  (Graph.Builder.finish b, l)

let test_link_reserve_basic () =
  let g, l = two_node_graph () in
  let ls = Link_state.create g in
  let r = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  check_float "start" 0.0 r.Link_state.start;
  check_float "finish" 1e-3 r.Link_state.finish;
  check_float "no queueing" 0.0 r.Link_state.queue_delay;
  check_float "arrival includes latency" (1e-3 +. 1e-6) (Link_state.arrival ls ~link:l r)

let test_link_fifo_queueing () =
  let g, l = two_node_graph () in
  let ls = Link_state.create g in
  let _ = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  let r2 = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  check_float "queued behind first" 1e-3 r2.Link_state.start;
  check_float "queue delay" 1e-3 r2.Link_state.queue_delay;
  check_float "backlog" 2e-3 (Link_state.backlog ls ~link:l ~now:0.0)

let test_link_independent_directions () =
  let g, l = two_node_graph () in
  let ls = Link_state.create g in
  let _ = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  let r = Link_state.reserve ls ~link:(Graph.peer_link l) ~now:0.0 ~bytes:1e6 in
  check_float "reverse direction free" 0.0 r.Link_state.queue_delay

let test_link_idle_gap () =
  let g, l = two_node_graph () in
  let ls = Link_state.create g in
  let _ = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  let r = Link_state.reserve ls ~link:l ~now:5.0 ~bytes:1e6 in
  check_float "starts at now after idle" 5.0 r.Link_state.start;
  check_float "busy accum" 2e-3 (Link_state.busy_seconds ls ~link:l);
  check_float "utilization" (2e-3 /. 6.0) (Link_state.utilization ls ~link:l ~horizon:6.0)

let test_link_down_rejected () =
  let g, l = two_node_graph () in
  let ls = Link_state.create g in
  Graph.fail_link g l;
  Alcotest.(check bool) "down raises" true
    (try ignore (Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1.0); false
     with Invalid_argument _ -> true);
  Graph.restore_all g

let test_link_reset () =
  let g, l = two_node_graph () in
  let ls = Link_state.create g in
  let _ = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  Link_state.reset ls;
  let r = Link_state.reserve ls ~link:l ~now:0.0 ~bytes:1e6 in
  check_float "fresh" 0.0 r.Link_state.queue_delay

(* ------------------------------------------------------------------ *)
(* Transfer                                                            *)
(* ------------------------------------------------------------------ *)

let line_fabric () =
  (* a - b - c with 1 GB/s links, 1 us latency. *)
  let b = Graph.Builder.create () in
  let na = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:0 in
  let nb = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:0 in
  let nc = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:1 in
  let l1 = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 na nb in
  let l2 = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 nb nc in
  (Graph.Builder.finish b, na, nb, nc, l1, l2)

let test_unicast_store_and_forward () =
  let g, _, _, _, l1, l2 = line_fabric () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let delivered = ref nan in
  Transfer.unicast e ls ~links:[ l1; l2 ] ~bytes:1e6 ~start:0.0
    ~on_delivered:(fun t -> delivered := t)
    ();
  Engine.run e;
  (* Two hops, each 1 ms serialization + 1 us propagation. *)
  check_float "arrival" (2e-3 +. 2e-6) !delivered

let test_unicast_pipeline_two_chunks () =
  let g, _, _, _, l1, l2 = line_fabric () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let times = ref [] in
  for _ = 1 to 2 do
    Transfer.unicast e ls ~links:[ l1; l2 ] ~bytes:1e6 ~start:0.0
      ~on_delivered:(fun t -> times := t :: !times)
      ()
  done;
  Engine.run e;
  (match List.rev !times with
  | [ t1; t2 ] ->
      check_float "chunk1" (2e-3 +. 2e-6) t1;
      (* Chunk 2 starts on link1 at 1 ms (FIFO), reaches b at 2 ms + 1 us,
         link2 is free by then (b finished chunk1 at 2 ms): pipelined. *)
      check_float "chunk2 pipelined" (3e-3 +. 2e-6) t2
  | _ -> Alcotest.fail "expected two deliveries")

let test_unicast_empty_path () =
  let g, _, _, _, _, _ = line_fabric () in
  ignore g;
  let e = Engine.create () in
  let ls = Link_state.create g in
  let delivered = ref nan in
  Transfer.unicast e ls ~links:[] ~bytes:1.0 ~start:2.5
    ~on_delivered:(fun t -> delivered := t)
    ();
  Engine.run e;
  check_float "immediate" 2.5 !delivered

let test_unicast_on_reserve_hook () =
  let g, _, _, _, l1, l2 = line_fabric () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let seen = ref [] in
  let send () =
    Transfer.unicast e ls ~links:[ l1; l2 ] ~bytes:1e6 ~start:0.0
      ~on_reserve:(fun ~link ~queue_delay -> seen := (link, queue_delay) :: !seen)
      ~on_delivered:(fun _ -> ())
      ()
  in
  send ();
  send ();
  Engine.run e;
  Alcotest.(check int) "4 reservations" 4 (List.length !seen);
  let queued = List.filter (fun (_, d) -> d > 0.0) !seen in
  Alcotest.(check int) "second chunk queued once" 1 (List.length queued)

let test_path_links () =
  let g, na, nb, nc, l1, l2 = line_fabric () in
  Alcotest.(check (list int)) "path" [ l1; l2 ] (Transfer.path_links g [ na; nb; nc ]);
  Alcotest.(check bool) "broken path raises" true
    (try ignore (Transfer.path_links g [ na; nc ]); false
     with Invalid_argument _ -> true)

let test_multicast_tree_timing () =
  (* Root r with two children via a switch: r -> s; s -> a, s -> b. *)
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:0 in
  let s = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:0 in
  let a = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:1 in
  let c = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:2 in
  let l_rs = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 r s in
  let l_sa = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 s a in
  let l_sc = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 s c in
  let g = Graph.Builder.finish b in
  let tree =
    Peel_steiner.Tree.of_parents g ~root:r
      ~parents:[ (s, (r, l_rs)); (a, (s, l_sa)); (c, (s, l_sc)) ]
  in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let arrivals = Hashtbl.create 4 in
  Transfer.multicast e ls ~tree ~bytes:1e6 ~start:0.0
    ~on_delivered:(fun ~node ~time -> Hashtbl.replace arrivals node time)
    ();
  Engine.run e;
  (* Replication at s: both children get their own link, so they arrive
     simultaneously after 2 serializations + 2 latencies. *)
  check_float "a" (2e-3 +. 2e-6) (Hashtbl.find arrivals a);
  check_float "c" (2e-3 +. 2e-6) (Hashtbl.find arrivals c);
  check_float "s" (1e-3 +. 1e-6) (Hashtbl.find arrivals s)

(* Property: unicast delivery time equals the closed-form recurrence for
   a single transfer on an idle path. *)
let prop_unicast_idle_path_closed_form =
  QCheck.Test.make ~name:"unicast timing matches closed form" ~count:50
    QCheck.(pair (float_range 1e3 1e8) (int_range 1 5))
    (fun (bytes, nlinks) ->
      let b = Graph.Builder.create () in
      let nodes =
        Array.init (nlinks + 1) (fun i ->
            Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:i)
      in
      let links = ref [] in
      for i = 0 to nlinks - 1 do
        links :=
          Graph.Builder.add_duplex b ~latency:2e-6 ~bandwidth:5e8 nodes.(i)
            nodes.(i + 1)
          :: !links
      done;
      let g = Graph.Builder.finish b in
      let e = Engine.create () in
      let ls = Link_state.create g in
      let delivered = ref nan in
      Transfer.unicast e ls ~links:(List.rev !links) ~bytes ~start:0.0
        ~on_delivered:(fun t -> delivered := t)
        ();
      Engine.run e;
      let expected = float_of_int nlinks *. ((bytes /. 5e8) +. 2e-6) in
      Float.abs (!delivered -. expected) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Loss / selective repeat                                             *)
(* ------------------------------------------------------------------ *)

let test_loss_model_validation () =
  Alcotest.(check bool) "bad prob" true
    (try ignore (Transfer.loss_model ~seed:1 ~prob:1.0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad rto" true
    (try ignore (Transfer.loss_model ~seed:1 ~prob:0.1 ~rto:0.0 ()); false
     with Invalid_argument _ -> true)

let test_unicast_lossless_prob_zero () =
  let g, _, _, _, l1, l2 = line_fabric () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let loss = Transfer.loss_model ~seed:3 ~prob:0.0 () in
  let delivered = ref nan in
  Transfer.unicast e ls ~links:[ l1; l2 ] ~bytes:1e6 ~start:0.0 ~loss
    ~on_delivered:(fun t -> delivered := t)
    ();
  Engine.run e;
  check_float "same as lossless" (2e-3 +. 2e-6) !delivered;
  Alcotest.(check int) "no retransmissions" 0 loss.Transfer.retransmissions

let test_unicast_recovers_from_loss () =
  let g, _, _, _, l1, l2 = line_fabric () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  (* 30% loss: over 50 chunks some will drop, all must still arrive. *)
  let loss = Transfer.loss_model ~seed:5 ~prob:0.3 ~rto:10e-6 () in
  let count = ref 0 in
  for _ = 1 to 50 do
    Transfer.unicast e ls ~links:[ l1; l2 ] ~bytes:1e4 ~start:0.0 ~loss
      ~on_delivered:(fun _ -> incr count)
      ()
  done;
  Engine.run e;
  Alcotest.(check int) "all delivered" 50 !count;
  Alcotest.(check bool) "some retransmissions" true (loss.Transfer.retransmissions > 0)

let chain_tree () =
  (* Chain r -> s -> a. *)
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:0 in
  let s = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:0 in
  let a = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:1 in
  let l_rs = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 r s in
  let l_sa = Graph.Builder.add_duplex b ~latency:1e-6 ~bandwidth:1e9 s a in
  let g = Graph.Builder.finish b in
  let tree =
    Peel_steiner.Tree.of_parents g ~root:r
      ~parents:[ (s, (r, l_rs)); (a, (s, l_sa)) ]
  in
  (g, tree, r, s, a, l_rs, l_sa)

let test_multicast_down_link_orphans_subtree () =
  (* A *failed* r->s link cannot be repaired hop-locally: both s and a
     are orphaned (end-to-end recovery is the caller's job). *)
  let g, tree, _, s, a, l_rs, _ = chain_tree () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  Graph.fail_link g l_rs;
  let lost = ref [] and delivered = ref [] in
  Transfer.multicast e ls ~tree ~bytes:1e6 ~start:0.0
    ~on_lost:(fun ~node ~time:_ -> lost := node :: !lost)
    ~on_delivered:(fun ~node ~time:_ -> delivered := node :: !delivered)
    ();
  Engine.run e;
  Graph.restore_all g;
  Alcotest.(check (list int)) "both orphaned" [ s; a ] (List.sort compare !lost);
  Alcotest.(check (list int)) "none delivered" [] !delivered

let test_multicast_loss_repaired_hop_locally () =
  (* Random loss is repaired by the edge's sender like unicast: every
     member still gets the chunk, repairs show in [retransmissions]. *)
  let g, tree, _, _, _, _, _ = chain_tree () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let loss = Transfer.loss_model ~seed:5 ~prob:0.3 ~rto:10e-6 () in
  let lost = ref 0 and delivered = ref 0 in
  for _ = 1 to 25 do
    Transfer.multicast e ls ~tree ~bytes:1e4 ~start:0.0 ~loss
      ~on_lost:(fun ~node:_ ~time:_ -> incr lost)
      ~on_delivered:(fun ~node:_ ~time:_ -> incr delivered)
      ()
  done;
  Engine.run e;
  Alcotest.(check int) "every member delivered" (25 * 2) !delivered;
  Alcotest.(check int) "no orphans" 0 !lost;
  Alcotest.(check bool) "repairs accounted" true
    (loss.Transfer.retransmissions > 0)

let test_midflight_failure_drops_chunk () =
  (* The link fails while the chunk is in flight (between reservation
     and arrival): the epoch check catches it and the chunk is lost. *)
  let g, _, _, _, _, l_rs, _ = chain_tree () in
  let e = Engine.create () in
  let ls = Link_state.create g in
  let lost_at = ref nan and delivered = ref false in
  (* 1 MB at 1 GB/s serializes for 1 ms; kill the pair at 0.5 ms. *)
  Engine.schedule e 0.5e-3 (fun () ->
      Alcotest.(check bool) "transition applied" true
        (Link_state.set_link_up ls ~now:0.5e-3 ~duplex:l_rs ~up:false));
  Transfer.unicast e ls ~links:[ l_rs ] ~bytes:1e6 ~start:0.0
    ~on_lost:(fun ~time -> lost_at := time)
    ~on_delivered:(fun _ -> delivered := true)
    ();
  Engine.run e;
  Graph.restore_all g;
  Alcotest.(check bool) "not delivered" false !delivered;
  check_float "lost at the would-be arrival" (1e-3 +. 1e-6) !lost_at

(* ------------------------------------------------------------------ *)
(* DCQCN                                                               *)
(* ------------------------------------------------------------------ *)

let test_dcqcn_initial_rate () =
  let d = Dcqcn.create ~line_rate:1e9 () in
  check_float "line rate" 1e9 (Dcqcn.rate d ~now:0.0)

let test_dcqcn_cut_and_recover () =
  let d = Dcqcn.create ~line_rate:1e9 () in
  Dcqcn.on_cnp d ~now:0.0;
  check_float "halved" 5e8 (Dcqcn.rate d ~now:0.0);
  (* Full recovery takes 2 ms; after 1 ms we regain half the line rate. *)
  check_float "recovering" 1e9 (Dcqcn.rate d ~now:1e-3);
  Alcotest.(check int) "one cut" 1 (Dcqcn.cuts d)

let test_dcqcn_guard_suppresses_burst () =
  let d = Dcqcn.create ~line_rate:1e9 () in
  (* 64 CNPs within one guard window: only the first cuts. *)
  for i = 0 to 63 do
    Dcqcn.on_cnp d ~now:(float_of_int i *. 1e-7)
  done;
  Alcotest.(check int) "one cut under guard" 1 (Dcqcn.cuts d)

let test_dcqcn_no_guard_collapses () =
  let d = Dcqcn.create ~guard:None ~line_rate:1e9 () in
  for i = 0 to 63 do
    Dcqcn.on_cnp d ~now:(float_of_int i *. 1e-7)
  done;
  Alcotest.(check int) "64 cuts without guard" 64 (Dcqcn.cuts d);
  (* Floor is 1e-3 of line rate; allow the sliver of linear recovery
     accrued since the last cut. *)
  Alcotest.(check bool) "rate floored" true (Dcqcn.rate d ~now:6.4e-6 <= 1e9 *. 1e-3 *. 1.1)

let test_dcqcn_guard_allows_spaced_cuts () =
  let d = Dcqcn.create ~line_rate:1e9 () in
  Dcqcn.on_cnp d ~now:0.0;
  Dcqcn.on_cnp d ~now:100e-6;
  Alcotest.(check int) "two spaced cuts" 2 (Dcqcn.cuts d)

let test_dcqcn_release_duration () =
  let d = Dcqcn.create ~line_rate:1e9 () in
  check_float "at line rate" 1e-3 (Dcqcn.release_duration d ~now:0.0 ~bytes:1e6)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cascading" `Quick test_engine_cascading;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "until" `Quick test_engine_until;
        ] );
      ( "link_state",
        [
          Alcotest.test_case "reserve basic" `Quick test_link_reserve_basic;
          Alcotest.test_case "fifo queueing" `Quick test_link_fifo_queueing;
          Alcotest.test_case "directions independent" `Quick test_link_independent_directions;
          Alcotest.test_case "idle gap" `Quick test_link_idle_gap;
          Alcotest.test_case "down rejected" `Quick test_link_down_rejected;
          Alcotest.test_case "reset" `Quick test_link_reset;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "store and forward" `Quick test_unicast_store_and_forward;
          Alcotest.test_case "chunk pipelining" `Quick test_unicast_pipeline_two_chunks;
          Alcotest.test_case "empty path" `Quick test_unicast_empty_path;
          Alcotest.test_case "on_reserve hook" `Quick test_unicast_on_reserve_hook;
          Alcotest.test_case "path_links" `Quick test_path_links;
          Alcotest.test_case "multicast timing" `Quick test_multicast_tree_timing;
          qt prop_unicast_idle_path_closed_form;
        ] );
      ( "loss",
        [
          Alcotest.test_case "model validation" `Quick test_loss_model_validation;
          Alcotest.test_case "prob zero is lossless" `Quick test_unicast_lossless_prob_zero;
          Alcotest.test_case "unicast recovers" `Quick test_unicast_recovers_from_loss;
          Alcotest.test_case "down link orphans subtree" `Quick
            test_multicast_down_link_orphans_subtree;
          Alcotest.test_case "multicast loss repaired hop-locally" `Quick
            test_multicast_loss_repaired_hop_locally;
          Alcotest.test_case "mid-flight failure drops chunk" `Quick
            test_midflight_failure_drops_chunk;
        ] );
      ( "dcqcn",
        [
          Alcotest.test_case "initial rate" `Quick test_dcqcn_initial_rate;
          Alcotest.test_case "cut and recover" `Quick test_dcqcn_cut_and_recover;
          Alcotest.test_case "guard suppresses burst" `Quick test_dcqcn_guard_suppresses_burst;
          Alcotest.test_case "no guard collapses" `Quick test_dcqcn_no_guard_collapses;
          Alcotest.test_case "guard allows spaced cuts" `Quick test_dcqcn_guard_allows_spaced_cuts;
          Alcotest.test_case "release duration" `Quick test_dcqcn_release_duration;
        ] );
    ]
