(* Tests for the topology zoo: generator determinism and invariants,
   the generalized layer-peeling planner's bit-identity with the Clos
   specialization, the exact-Steiner oracle differential, the TOPO00x
   diagnostic battery (each seeded corruption must be caught by its
   code), and end-to-end runs through plan -> compile -> simulate. *)

open Peel_topology
open Peel_steiner
module Rng = Peel_util.Rng

let build cls ~seed =
  match cls with
  | Zoo.Abfattree -> Zoo.abfattree ~hosts_per_tor:2 ~k:4 ()
  | Zoo.Vl2 -> Zoo.vl2 ~da:4 ~di:4 ()
  | Zoo.Jellyfish -> Zoo.jellyfish ~switches:12 ~net_degree:3 ~seed ()
  | Zoo.Xpander -> Zoo.xpander ~net_degree:3 ~lift:4 ~seed ()

let edge_set g =
  List.sort compare
    (Array.to_list (Graph.links g)
    |> List.map (fun (l : Graph.link) -> (l.Graph.src, l.Graph.dst)))

let group_on fabric ~seed ~size =
  let hosts = Fabric.hosts fabric in
  let n = Array.length hosts in
  let rng = Rng.create seed in
  let picks =
    Rng.sample_without_replacement rng n (min n size)
    |> List.map (fun i -> hosts.(i))
  in
  (List.hd picks, List.tl picks)

(* ------------------------------------------------------------------ *)
(* Generators: determinism, invariants, rejection                      *)
(* ------------------------------------------------------------------ *)

let prop_same_seed_same_fabric =
  QCheck.Test.make ~name:"same seed => identical fabric" ~count:30
    QCheck.(int_range 0 5000)
    (fun seed ->
      List.for_all
        (fun cls ->
          let a = build cls ~seed and b = build cls ~seed in
          edge_set a.Zoo.graph = edge_set b.Zoo.graph
          && a.Zoo.tor_of_host = b.Zoo.tor_of_host
          && a.Zoo.layer_of = b.Zoo.layer_of)
        Zoo.all_classes)

let prop_generators_validate =
  QCheck.Test.make ~name:"every generated fabric passes its own battery"
    ~count:25
    QCheck.(int_range 0 5000)
    (fun seed ->
      List.for_all
        (fun cls ->
          let z = build cls ~seed in
          Zoo.layering_violations z = []
          && Zoo.invariant_violations z = []
          && Zoo.validate z = Ok ())
        Zoo.all_classes)

let test_degree_invariants () =
  let z = Zoo.jellyfish ~switches:16 ~net_degree:4 ~seed:3 () in
  let g = z.Zoo.graph in
  Array.iter
    (fun sw ->
      (* net_degree switch ports + 1 host. *)
      Alcotest.(check int) "jellyfish degree" 5 (Graph.degree g sw))
    z.Zoo.tors;
  let x = Zoo.xpander ~net_degree:3 ~lift:5 ~seed:3 () in
  Alcotest.(check int) "xpander switches" 20 (Zoo.num_switches x);
  Array.iter
    (fun sw -> Alcotest.(check int) "xpander degree" 4 (Graph.degree x.Zoo.graph sw))
    x.Zoo.tors;
  let v = Zoo.vl2 ~da:6 ~di:4 () in
  Alcotest.(check int) "vl2 tors" 6 (Array.length v.Zoo.tors);
  Alcotest.(check int) "vl2 layers" 4 (Zoo.num_layers v)

let test_rejection () =
  let raises f =
    match f () with
    | (_ : Zoo.t) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Zoo.abfattree ~k:5 ());
  raises (fun () -> Zoo.abfattree ~k:2 ());
  raises (fun () -> Zoo.vl2 ~da:3 ~di:4 ());
  (* switches * net_degree odd: no regular graph exists. *)
  raises (fun () -> Zoo.jellyfish ~switches:5 ~net_degree:3 ~seed:1 ());
  raises (fun () -> Zoo.jellyfish ~switches:4 ~net_degree:4 ~seed:1 ());
  raises (fun () -> Zoo.xpander ~net_degree:1 ~lift:4 ~seed:1 ());
  Alcotest.(check bool) "abfattree_opt none" true
    (Zoo.abfattree_opt ~k:5 () = None);
  Alcotest.(check bool) "vl2_opt none" true (Zoo.vl2_opt ~da:3 ~di:4 () = None);
  Alcotest.(check bool) "jellyfish_opt none" true
    (Zoo.jellyfish_opt ~switches:5 ~net_degree:3 ~seed:1 () = None);
  Alcotest.(check bool) "xpander_opt none" true
    (Zoo.xpander_opt ~net_degree:1 ~lift:4 ~seed:1 () = None);
  Alcotest.(check bool) "jellyfish_opt some" true
    (Zoo.jellyfish_opt ~switches:12 ~net_degree:3 ~seed:1 () <> None)

(* ------------------------------------------------------------------ *)
(* Fabric introspection                                                *)
(* ------------------------------------------------------------------ *)

let test_introspection () =
  let ft = Fabric.fat_tree ~hosts_per_tor:2 ~gpus_per_host:0 ~k:4 () in
  Alcotest.(check int) "fat-tree layers" 4 (Fabric.num_layers ft);
  Alcotest.(check int) "fat-tree endpoints" 16 (Fabric.num_endpoints ft);
  Alcotest.(check int) "tors at layer 1" 8
    (Array.length (Fabric.switches_at_layer ft 1));
  Array.iter
    (fun t -> Alcotest.(check int) "tor layer" 1 (Fabric.layer_of ft t))
    (Fabric.tors ft);
  let z = build Zoo.Vl2 ~seed:0 in
  let f = Fabric.of_zoo z in
  Alcotest.(check int) "vl2 layers" 4 (Fabric.num_layers f);
  Array.iter
    (fun t -> Alcotest.(check int) "zoo tor layer" 1 (Fabric.layer_of f t))
    (Fabric.tors f);
  Alcotest.(check int) "zoo endpoints" (Zoo.num_hosts z)
    (Fabric.num_endpoints f)

(* ------------------------------------------------------------------ *)
(* peel_general: bit-identity on the Clos, custom layerings           *)
(* ------------------------------------------------------------------ *)

let prop_peel_general_identity_on_clos =
  QCheck.Test.make
    ~name:"peel_general bit-identical to build on (failed) Clos" ~count:40
    QCheck.(pair (int_range 0 2000) (int_range 0 20))
    (fun (seed, fail_pct) ->
      let fabric =
        if seed mod 2 = 0 then
          Fabric.fat_tree ~hosts_per_tor:2 ~gpus_per_host:0 ~k:4 ()
        else Fabric.leaf_spine ~spines:3 ~leaves:6 ~hosts_per_leaf:2 ()
      in
      let g = Fabric.graph fabric in
      let rng = Rng.create seed in
      if fail_pct > 0 then
        ignore
          (Fabric.fail_random fabric ~rng ~tier:`All
             ~fraction:(float_of_int fail_pct /. 100.0)
             ());
      let source, dests = group_on fabric ~seed:(seed + 1) ~size:7 in
      let a = Layer_peel.build ~salt:seed g ~source ~dests in
      let b = Layer_peel.peel_general ~salt:seed g ~source ~dests in
      match (a, b) with
      | None, None -> true
      | Some ta, Some tb -> Tree.edges ta = Tree.edges tb
      | _ -> false)

let prop_peel_general_monotone_relabel =
  QCheck.Test.make
    ~name:"monotone relabeling of BFS layers yields the same tree" ~count:30
    QCheck.(int_range 0 2000)
    (fun seed ->
      let z = build Zoo.Jellyfish ~seed in
      let g = z.Zoo.graph in
      let source, dests = group_on (Fabric.of_zoo z) ~seed ~size:6 in
      let dist = Graph.bfs_dist g source in
      let layers =
        Array.map
          (fun d -> if d = Graph.unreachable then d else (3 * d) + 1)
          dist
      in
      layers.(source) <- 0;
      let a = Layer_peel.peel_general ~salt:seed g ~source ~dests in
      let b = Layer_peel.peel_general ~salt:seed ~layers g ~source ~dests in
      match (a, b) with
      | Some ta, Some tb -> Tree.edges ta = Tree.edges tb
      | _ -> false)

let test_peel_general_rejects_bad_layering () =
  let z = build Zoo.Jellyfish ~seed:5 in
  let g = z.Zoo.graph in
  let source, dests = group_on (Fabric.of_zoo z) ~seed:5 ~size:4 in
  let raises layers =
    match Layer_peel.peel_general ~layers g ~source ~dests with
    | (_ : Tree.t option) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  (* Wrong length. *)
  raises (Array.make 3 0);
  (* Source not on layer 0. *)
  let l = Graph.bfs_dist g source in
  let l1 = Array.map (fun d -> d + 1) l in
  raises l1;
  (* A second node on layer 0. *)
  let l2 = Array.copy l in
  l2.(List.hd dests) <- 0;
  raises l2;
  (* Negative label. *)
  let l3 = Array.copy l in
  l3.(List.hd dests) <- -1;
  raises l3

(* ------------------------------------------------------------------ *)
(* Oracle differential                                                 *)
(* ------------------------------------------------------------------ *)

let prop_oracle_matches_direct_dp =
  QCheck.Test.make
    ~name:"pendant-collapsed oracle = direct Dreyfus-Wagner" ~count:30
    QCheck.(pair (int_range 0 2000) (int_range 2 5))
    (fun (seed, size) ->
      List.for_all
        (fun cls ->
          let z = build cls ~seed in
          let g = z.Zoo.graph in
          let source, dests = group_on (Fabric.of_zoo z) ~seed ~size in
          Exact.oracle g ~source ~dests
          = Exact.steiner_cost g ~terminals:(source :: dests))
        Zoo.all_classes)

let prop_greedy_never_beats_oracle =
  QCheck.Test.make ~name:"greedy cost >= oracle optimum" ~count:40
    QCheck.(pair (int_range 0 3000) (int_range 3 8))
    (fun (seed, size) ->
      List.for_all
        (fun cls ->
          let z = build cls ~seed in
          let g = z.Zoo.graph in
          let source, dests = group_on (Fabric.of_zoo z) ~seed ~size in
          match
            (Layer_peel.peel_general g ~source ~dests, Exact.oracle g ~source ~dests)
          with
          | Some tree, Some opt -> Tree.cost tree >= opt
          | _ -> true)
        Zoo.all_classes)

let test_peel_exact_on_symmetric_clos () =
  (* Lemma 2.1 via the oracle: ratio 1.0 on the healthy fat-tree. *)
  let fabric = Fabric.fat_tree ~hosts_per_tor:2 ~gpus_per_host:0 ~k:4 () in
  let g = Fabric.graph fabric in
  for seed = 0 to 9 do
    let source, dests = group_on fabric ~seed ~size:8 in
    match
      (Layer_peel.peel_general g ~source ~dests, Exact.oracle g ~source ~dests)
    with
    | Some tree, Some opt -> Alcotest.(check int) "exact on Clos" opt (Tree.cost tree)
    | _ -> Alcotest.fail "tree or oracle missing on the healthy Clos"
  done

(* ------------------------------------------------------------------ *)
(* TOPO00x: every seeded corruption is caught by its code              *)
(* ------------------------------------------------------------------ *)

let codes ds = List.map (fun d -> d.Peel_check.Diagnostic.code) ds

let has_error ds code =
  List.mem code (codes (Peel_check.Diagnostic.errors ds))

let test_topo001_layering_corruption () =
  List.iter
    (fun cls ->
      let z = build cls ~seed:11 in
      Alcotest.(check bool) "clean" false
        (has_error (Peel_check.Check_topology.check_layering z) "TOPO001");
      z.Zoo.layer_of.(z.Zoo.tors.(0)) <- 0;
      Alcotest.(check bool) "caught" true
        (has_error (Peel_check.Check_topology.check_layering z) "TOPO001"))
    Zoo.all_classes

let test_topo002_invariant_corruption () =
  List.iter
    (fun cls ->
      let z = build cls ~seed:11 in
      let z' =
        { z with Zoo.tors = Array.sub z.Zoo.tors 0 (Array.length z.Zoo.tors - 1) }
      in
      Alcotest.(check bool) "clean" false
        (has_error (Peel_check.Check_topology.check_invariants z) "TOPO002");
      Alcotest.(check bool) "caught" true
        (has_error (Peel_check.Check_topology.check_invariants z') "TOPO002"))
    Zoo.all_classes

let test_topo003_tree_corruption () =
  let z = build Zoo.Jellyfish ~seed:7 in
  let g = z.Zoo.graph in
  let source, dests = group_on (Fabric.of_zoo z) ~seed:7 ~size:6 in
  let tree = Option.get (Layer_peel.peel_general g ~source ~dests) in
  let clean = Peel_check.Check_topology.check_general_tree g tree ~source ~dests in
  Alcotest.(check (list string)) "clean tree" [] (codes (Peel_check.Diagnostic.errors clean));
  (* Attach an out-of-tree node through a non-descending up link: valid
     by every TREE check, caught only by TOPO003. *)
  let dist = Graph.bfs_dist g source in
  let binding = ref None in
  Array.iter
    (fun (l : Graph.link) ->
      if
        !binding = None && l.Graph.up && Tree.mem tree l.Graph.src
        && (not (Tree.mem tree l.Graph.dst))
        && dist.(l.Graph.dst) <> Graph.unreachable
        && dist.(l.Graph.src) >= dist.(l.Graph.dst)
      then binding := Some (l.Graph.dst, (l.Graph.src, l.Graph.link_id)))
    (Graph.links g);
  match !binding with
  | None -> Alcotest.fail "no non-descending attachment candidate (bad seed?)"
  | Some b ->
      let parents =
        b :: List.map (fun (p, c, lid) -> (c, (p, lid))) (Tree.edges tree)
      in
      let bad = Tree.of_parents g ~root:source ~parents in
      let ds = Peel_check.Check_topology.check_general_tree g bad ~source ~dests in
      Alcotest.(check bool) "caught" true (has_error ds "TOPO003")

let test_topo004_ratio_bounds () =
  let module CT = Peel_check.Check_topology in
  Alcotest.(check (list string)) "in bounds" []
    (codes (CT.check_ratio ~cost:6 ~opt:5 ~far:3 ~ndests:4));
  Alcotest.(check bool) "beats oracle caught" true
    (has_error (CT.check_ratio ~cost:4 ~opt:5 ~far:3 ~ndests:4) "TOPO004");
  Alcotest.(check bool) "envelope breach caught" true
    (has_error (CT.check_ratio ~cost:20 ~opt:2 ~far:3 ~ndests:4) "TOPO004")

let test_check_scenario_runs_topo_battery () =
  let z = build Zoo.Xpander ~seed:13 in
  let f = Fabric.of_zoo z in
  let source, dests = group_on f ~seed:13 ~size:6 in
  let ds = Peel_check.check_scenario f ~source ~dests in
  Alcotest.(check (list string)) "no errors on a clean zoo scenario" []
    (codes (Peel_check.Diagnostic.errors ds));
  (* Corrupt the layering: the same battery must now fail with TOPO001. *)
  z.Zoo.layer_of.(z.Zoo.tors.(0)) <- 0;
  let ds = Peel_check.check_scenario f ~source ~dests in
  Alcotest.(check bool) "TOPO001 surfaces through check_scenario" true
    (has_error ds "TOPO001")

(* ------------------------------------------------------------------ *)
(* Reconfiguration schedules                                           *)
(* ------------------------------------------------------------------ *)

let test_reconfig_schedule () =
  let z = build Zoo.Jellyfish ~seed:23 in
  let g = z.Zoo.graph in
  let epochs =
    Zoo.Reconfig.schedule z ~rng:(Rng.create 42) ~epochs:4 ~period:0.5
      ~fraction:0.2
  in
  Alcotest.(check int) "epoch count" 4 (List.length epochs);
  (* The schedule never touches the graph itself. *)
  Array.iter
    (fun id -> Alcotest.(check bool) "links all up" true (Graph.link_up g id))
    (Zoo.inter_switch_duplex_links z);
  let dark = int_of_float (Float.round (0.2 *. float_of_int (Array.length (Zoo.inter_switch_duplex_links z)))) in
  let module S = Set.Make (Int) in
  let hosts = Array.to_list z.Zoo.hosts in
  let cur = ref S.empty in
  List.iteri
    (fun i (e : Zoo.Reconfig.epoch) ->
      Alcotest.(check (float 1e-9)) "epoch time" (0.5 *. float_of_int i)
        e.Zoo.Reconfig.at;
      (* Deltas are disjoint and keep the dark set at the target size. *)
      List.iter
        (fun id -> Alcotest.(check bool) "fail is fresh" false (S.mem id !cur))
        e.Zoo.Reconfig.fail;
      List.iter
        (fun id -> Alcotest.(check bool) "recover was dark" true (S.mem id !cur))
        e.Zoo.Reconfig.recover;
      cur := S.diff (S.union !cur (S.of_list e.Zoo.Reconfig.fail))
               (S.of_list e.Zoo.Reconfig.recover);
      Alcotest.(check int) "dark set size" dark (S.cardinal !cur);
      (* Every epoch's dark set keeps the hosts connected. *)
      S.iter (fun id -> Graph.fail_link g id) !cur;
      Alcotest.(check bool) "connected under epoch" true (Graph.connected g hosts);
      S.iter (fun id -> Graph.recover_link g id) !cur)
    epochs

(* ------------------------------------------------------------------ *)
(* End to end: plan -> compile -> simulate on every class              *)
(* ------------------------------------------------------------------ *)

let test_end_to_end_all_classes () =
  List.iter
    (fun cls ->
      let z = build cls ~seed:29 in
      let f = Fabric.of_zoo z in
      let source, dests = group_on f ~seed:29 ~size:6 in
      (* Plan and rule compile. *)
      let plan = Peel.plan f ~source ~dests in
      Alcotest.(check bool) "plan has packets" true
        (Peel.Plan.num_packets plan > 0);
      let t = Peel_compile.Compile.compile f [ (0, plan) ] in
      let cds = Peel_compile.Check_compile.check f t in
      Alcotest.(check (list string))
        (Zoo.cls_to_string cls ^ " compile certifies")
        []
        (codes (Peel_check.Diagnostic.errors cds));
      (* Simulate a small broadcast workload to completion. *)
      let cs =
        Peel_workload.Spec.poisson_broadcasts f (Rng.create 29) ~n:3
          ~scale:(min 6 (Fabric.num_endpoints f))
          ~bytes:1e6 ~load:0.3 ()
      in
      let out = Peel_collective.Runner.run f Peel_collective.Scheme.Peel cs in
      Alcotest.(check int)
        (Zoo.cls_to_string cls ^ " all collectives complete")
        3
        (List.length out.Peel_collective.Runner.ccts);
      List.iter
        (fun cct ->
          Alcotest.(check bool) "positive finite CCT" true
            (Float.is_finite cct && cct > 0.0))
        out.Peel_collective.Runner.ccts)
    Zoo.all_classes

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_zoo"
    [
      ( "generators",
        [
          qt prop_same_seed_same_fabric;
          qt prop_generators_validate;
          Alcotest.test_case "degree/size invariants" `Quick test_degree_invariants;
          Alcotest.test_case "bad parameters rejected" `Quick test_rejection;
          Alcotest.test_case "fabric introspection" `Quick test_introspection;
        ] );
      ( "peel_general",
        [
          qt prop_peel_general_identity_on_clos;
          qt prop_peel_general_monotone_relabel;
          Alcotest.test_case "bad layerings rejected" `Quick
            test_peel_general_rejects_bad_layering;
        ] );
      ( "oracle",
        [
          qt prop_oracle_matches_direct_dp;
          qt prop_greedy_never_beats_oracle;
          Alcotest.test_case "exact on symmetric Clos" `Quick
            test_peel_exact_on_symmetric_clos;
        ] );
      ( "topo_codes",
        [
          Alcotest.test_case "TOPO001 layering" `Quick test_topo001_layering_corruption;
          Alcotest.test_case "TOPO002 invariants" `Quick test_topo002_invariant_corruption;
          Alcotest.test_case "TOPO003 tree monotonicity" `Quick test_topo003_tree_corruption;
          Alcotest.test_case "TOPO004 ratio bounds" `Quick test_topo004_ratio_bounds;
          Alcotest.test_case "check_scenario zoo battery" `Quick
            test_check_scenario_runs_topo_battery;
        ] );
      ( "reconfig",
        [ Alcotest.test_case "delta schedule" `Quick test_reconfig_schedule ] );
      ( "end_to_end",
        [ Alcotest.test_case "plan/compile/simulate" `Quick test_end_to_end_all_classes ] );
    ]
