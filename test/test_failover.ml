(* Tests for mid-run failure injection (Peel_sim.Fault) and the
   failure-tolerant broadcast launchers (Peel_collective.Failover):
   schedule validation, engine application, deterministic replay of a
   whole traced failover run, and completion + conservation under
   failures for every scheme. *)

open Peel_topology
open Peel_workload
open Peel_collective
module Fault = Peel_sim.Fault
module Trace = Peel_sim.Trace
module Engine = Peel_sim.Engine
module Link_state = Peel_sim.Link_state
module Json = Peel_util.Json
module Rng = Peel_util.Rng

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.fail ("expected Invalid_argument: " ^ what)
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fault schedules: validation and ordering                            *)
(* ------------------------------------------------------------------ *)

let ev at duplex action = { Fault.at; duplex; action }

let test_of_list_sorts_stably () =
  let sched =
    Fault.of_list
      [ ev 2.0 4 Fault.Fail; ev 1.0 2 Fault.Fail; ev 1.0 0 Fault.Recover ]
  in
  Alcotest.(check bool) "not empty" false (Fault.is_empty sched);
  match Fault.events sched with
  | [ a; b; c ] ->
      Alcotest.(check (float 0.0)) "earliest first" 1.0 a.Fault.at;
      Alcotest.(check int) "tie keeps list order" 2 a.Fault.duplex;
      Alcotest.(check int) "tie keeps list order (2nd)" 0 b.Fault.duplex;
      Alcotest.(check (float 0.0)) "latest last" 2.0 c.Fault.at
  | _ -> Alcotest.fail "expected three events"

let test_of_list_rejects_bad_events () =
  expect_invalid "negative time" (fun () ->
      Fault.of_list [ ev (-1.0) 0 Fault.Fail ]);
  expect_invalid "NaN time" (fun () ->
      Fault.of_list [ ev Float.nan 0 Fault.Fail ]);
  expect_invalid "infinite time" (fun () ->
      Fault.of_list [ ev Float.infinity 0 Fault.Fail ]);
  expect_invalid "negative link id" (fun () ->
      Fault.of_list [ ev 1.0 (-2) Fault.Fail ]);
  Alcotest.(check bool) "empty schedule is fine" true
    (Fault.is_empty (Fault.of_list []))

let test_schedule_of_failures_validates_recovery () =
  expect_invalid "recovery before failure" (fun () ->
      Fault.schedule_of_failures ~at:2.0 ~recover_at:1.0 [ 0 ]);
  expect_invalid "recovery at failure instant" (fun () ->
      Fault.schedule_of_failures ~at:2.0 ~recover_at:2.0 [ 0 ]);
  let sched = Fault.schedule_of_failures ~at:1.0 ~recover_at:3.0 [ 0; 4 ] in
  Alcotest.(check int) "two fails + two recovers" 4
    (List.length (Fault.events sched));
  Alcotest.(check bool) "fails precede recovers" true
    (match Fault.events sched with
    | [ a; b; c; d ] ->
        a.Fault.action = Fault.Fail
        && b.Fault.action = Fault.Fail
        && c.Fault.action = Fault.Recover
        && d.Fault.action = Fault.Recover
    | _ -> false)

let test_install_applies_and_skips_noops () =
  (* Fail a pair twice and recover it twice: only the two real
     transitions reach the hook, and the link ends back up. *)
  let f = Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:1 () in
  let g = Fabric.graph f in
  let victim =
    match f with
    | Fabric.Ls ls ->
        Option.get
          (Graph.link_between g ls.Leaf_spine.spines.(0)
             ls.Leaf_spine.leaves.(0))
    | _ -> Alcotest.fail "expected leaf-spine"
  in
  let trace = Trace.create ~level:Trace.Full () in
  let engine = Engine.create ~trace () in
  let links = Link_state.create ~trace g in
  let sched =
    Fault.of_list
      [
        ev 1.0 victim Fault.Fail;
        ev 1.5 victim Fault.Fail;
        ev 2.0 victim Fault.Recover;
        ev 2.5 victim Fault.Recover;
      ]
  in
  let seen = ref [] in
  Fault.install engine links sched ~on_event:(fun e -> seen := e :: !seen) ();
  Alcotest.(check bool) "down only after install runs" true
    (Link_state.up links ~link:victim);
  Engine.run engine;
  Alcotest.(check int) "no-ops skip the hook" 2 (List.length !seen);
  Alcotest.(check (list (float 0.0)))
    "hook sees the real transitions" [ 1.0; 2.0 ]
    (List.rev_map (fun (e : Fault.event) -> e.Fault.at) !seen);
  Alcotest.(check bool) "link is back up" true
    (Link_state.up links ~link:victim);
  Alcotest.(check bool) "peer direction back up too" true
    (Link_state.up links ~link:(Graph.peer_link victim));
  let c = Trace.counters trace in
  Alcotest.(check int) "one fail traced" 1 c.Trace.link_fails;
  Alcotest.(check int) "one recover traced" 1 c.Trace.link_recovers

(* ------------------------------------------------------------------ *)
(* Deterministic replay                                                *)
(* ------------------------------------------------------------------ *)

let failover_fabric () =
  Fabric.leaf_spine ~spines:3 ~leaves:6 ~hosts_per_leaf:2 ~gpus_per_host:2 ()

let spec_for fabric ~scale =
  let members = Spec.place fabric (Rng.create 12) ~scale () in
  let source = List.hd members in
  {
    Spec.id = 0;
    arrival = 0.0;
    source;
    dests = List.filter (fun m -> m <> source) members;
    members;
    bytes = 4e6;
  }

let traced_failover ?faults fabric scheme spec =
  let trace = Trace.create ~level:Trace.Full () in
  let out = Failover.run ~trace ?faults fabric scheme [ spec ] in
  (trace, List.hd out.Runner.ccts)

let test_replay_byte_identical () =
  (* Same schedule, same fabric, same spec: the full event log — with a
     link failed while chunks are in flight, dropping them mid-wire —
     must replay byte-for-byte, and the CCT must match exactly. *)
  let fabric = failover_fabric () in
  let g = Fabric.graph fabric in
  let spec = spec_for fabric ~scale:12 in
  let source = spec.Spec.source and dests = spec.Spec.dests in
  let _, clean = traced_failover fabric Failover.Peel spec in
  (* Fail links the tree actually carries traffic on — but only ones
     whose loss keeps the group connected, so the run can complete. *)
  let tree = Option.get (Peel_steiner.Layer_peel.build g ~source ~dests) in
  let ids =
    (* Greedy: keep a candidate down only if the group stays connected
       with everything already selected also down — failing the whole
       set must not partition anyone. *)
    List.filter
      (fun l ->
        Graph.fail_link g l;
        let ok = Graph.connected g (source :: dests) in
        if not ok then Graph.recover_link g l;
        ok)
      (Peel_steiner.Tree.link_ids tree)
  in
  Graph.restore_all g;
  Alcotest.(check bool) "some tree links are expendable" true (ids <> []);
  let faults = Fault.schedule_of_failures ~at:(0.4 *. clean) ids in
  let run () =
    let r = traced_failover ~faults fabric Failover.Peel spec in
    (* The schedule leaves its links down past the run's end; restore
       the shared fabric before anything else uses it. *)
    List.iter (Fabric.recover_link fabric) ids;
    r
  in
  let t1, cct1 = run () in
  let t2, cct2 = run () in
  Alcotest.(check (float 0.0)) "identical CCT" cct1 cct2;
  Alcotest.(check bool) "mid-flight chunks were dropped" true
    ((Trace.counters t1).Trace.drops > 0);
  Alcotest.(check bool) "events JSON byte-identical" true
    (Json.to_string (Trace.events_to_json t1)
    = Json.to_string (Trace.events_to_json t2));
  Alcotest.(check string) "counters JSON byte-identical"
    (Json.to_string (Trace.counters_to_json t1))
    (Json.to_string (Trace.counters_to_json t2))

(* ------------------------------------------------------------------ *)
(* Completion and conservation under failures                          *)
(* ------------------------------------------------------------------ *)

let test_completes_under_failures_all_schemes () =
  (* The exp_failover draw: 25% of links out mid-run.  Every scheme
     must still deliver each chunk to each receiver exactly once, with
     a lint-clean trace (SIM007: nothing reserved on a down pair), and
     PEEL must have re-peeled at least once. *)
  let chunks = 8 in
  List.iter
    (fun scheme ->
      let fabric =
        Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:2
          ~gpus_per_host:2 ()
      in
      let members = Spec.place fabric (Rng.create 1600) ~scale:16 () in
      let source = List.hd members in
      let spec =
        {
          Spec.id = 0;
          arrival = 0.0;
          source;
          dests = List.filter (fun m -> m <> source) members;
          members;
          bytes = 8e6;
        }
      in
      let name = Failover.scheme_to_string scheme in
      let _, clean = traced_failover fabric scheme spec in
      let ids =
        Fabric.fail_random fabric ~rng:(Rng.create 2026) ~tier:`All
          ~fraction:0.25 ()
      in
      List.iter (Fabric.recover_link fabric) ids;
      let faults = Fault.schedule_of_failures ~at:(0.4 *. clean) ids in
      let trace, failed = traced_failover ~faults fabric scheme spec in
      let c = Trace.counters trace in
      let expected = chunks * List.length spec.Spec.dests in
      Alcotest.(check int) (name ^ ": chunks conserved") expected
        c.Trace.deliveries;
      Alcotest.(check bool) (name ^ ": failures bite") true (failed > clean);
      Alcotest.(check (list string))
        (name ^ ": check_trace clean (SIM007 incl.)")
        []
        (List.map Peel_check.Diagnostic.to_string
           (Peel_check.Check_sim.check_trace ~expected_deliveries:expected
              trace));
      if scheme = Failover.Peel then
        Alcotest.(check bool) "peel replans" true (c.Trace.replans >= 1))
    Failover.all_schemes

let test_recovery_restores_links () =
  (* A fail+recover schedule must leave the fabric exactly as it was. *)
  let fabric = failover_fabric () in
  let g = Fabric.graph fabric in
  let spec = spec_for fabric ~scale:8 in
  let _, clean = traced_failover fabric Failover.Peel spec in
  let ids =
    Fabric.fail_random fabric ~rng:(Rng.create 3) ~tier:`All ~fraction:0.1 ()
  in
  List.iter (Fabric.recover_link fabric) ids;
  let faults =
    Fault.schedule_of_failures ~at:(0.3 *. clean) ~recover_at:(0.7 *. clean)
      ids
  in
  let _, _ = traced_failover ~faults fabric Failover.Peel spec in
  List.iter
    (fun id ->
      Alcotest.(check bool) "link up after recovery" true
        (Graph.link_up g id
        && Graph.link_up g (Graph.peer_link id)))
    ids

let test_scheme_of_string () =
  List.iter
    (fun scheme ->
      Alcotest.(check bool) "round-trips" true
        (Failover.scheme_of_string (Failover.scheme_to_string scheme)
        = Some scheme))
    Failover.all_schemes;
  Alcotest.(check bool) "btree alias" true
    (Failover.scheme_of_string "btree" = Some Failover.Btree);
  Alcotest.(check bool) "unknown rejected" true
    (Failover.scheme_of_string "mesh" = None)

let () =
  Alcotest.run "peel_failover"
    [
      ( "fault",
        [
          Alcotest.test_case "of_list sorts stably" `Quick
            test_of_list_sorts_stably;
          Alcotest.test_case "of_list rejects bad events" `Quick
            test_of_list_rejects_bad_events;
          Alcotest.test_case "recovery validated" `Quick
            test_schedule_of_failures_validates_recovery;
          Alcotest.test_case "install applies, skips no-ops" `Quick
            test_install_applies_and_skips_noops;
        ] );
      ( "replay",
        [
          Alcotest.test_case "byte-identical replay" `Quick
            test_replay_byte_identical;
        ] );
      ( "failover",
        [
          Alcotest.test_case "all schemes complete" `Slow
            test_completes_under_failures_all_schemes;
          Alcotest.test_case "recovery restores links" `Quick
            test_recovery_restores_links;
          Alcotest.test_case "scheme names" `Quick test_scheme_of_string;
        ] );
    ]
