(* Tests for peel_topology: graph construction/traversal invariants,
   fat-tree and leaf-spine structure, failure injection. *)

open Peel_topology
module Rng = Peel_util.Rng

(* ------------------------------------------------------------------ *)
(* Graph basics                                                        *)
(* ------------------------------------------------------------------ *)

let tiny_graph () =
  (* s -- a -- b, plus s -- b direct. *)
  let b = Graph.Builder.create () in
  let s = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:0 in
  let a = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:0 in
  let c = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:1 in
  let l_sa = Graph.Builder.add_duplex b ~bandwidth:1e9 s a in
  let l_ac = Graph.Builder.add_duplex b ~bandwidth:1e9 a c in
  let l_sc = Graph.Builder.add_duplex b ~bandwidth:1e9 s c in
  (Graph.Builder.finish b, s, a, c, l_sa, l_ac, l_sc)

let test_duplex_pairing () =
  let g, _, _, _, l_sa, _, _ = tiny_graph () in
  let fwd = Graph.link g l_sa and bwd = Graph.link g (Graph.peer_link l_sa) in
  Alcotest.(check int) "reverse src" fwd.Graph.dst bwd.Graph.src;
  Alcotest.(check int) "reverse dst" fwd.Graph.src bwd.Graph.dst;
  Alcotest.(check int) "peer is involutive" l_sa (Graph.peer_link (Graph.peer_link l_sa))

let test_bfs_dist () =
  let g, s, a, c, _, _, _ = tiny_graph () in
  let d = Graph.bfs_dist g s in
  Alcotest.(check int) "self" 0 d.(s);
  Alcotest.(check int) "a" 1 d.(a);
  Alcotest.(check int) "c direct" 1 d.(c)

let test_bfs_after_failure () =
  let g, s, _, c, _, _, l_sc = tiny_graph () in
  Graph.fail_link g l_sc;
  let d = Graph.bfs_dist g s in
  Alcotest.(check int) "c via a" 2 d.(c);
  Graph.restore_all g;
  let d = Graph.bfs_dist g s in
  Alcotest.(check int) "c direct again" 1 d.(c)

let test_unreachable () =
  let g, s, a, c, l_sa, l_ac, l_sc = tiny_graph () in
  ignore a;
  Graph.fail_link g l_sa;
  Graph.fail_link g l_sc;
  ignore l_ac;
  let d = Graph.bfs_dist g s in
  Alcotest.(check int) "c unreachable" Graph.unreachable d.(c);
  Alcotest.(check bool) "not connected" false (Graph.connected g [ s; c ]);
  Graph.restore_all g

let test_shortest_path () =
  let g, s, a, c, _, _, l_sc = tiny_graph () in
  (match Graph.shortest_path g s c with
  | Some p -> Alcotest.(check (list int)) "direct" [ s; c ] p
  | None -> Alcotest.fail "expected path");
  Graph.fail_link g l_sc;
  (match Graph.shortest_path g s c with
  | Some p -> Alcotest.(check (list int)) "via a" [ s; a; c ] p
  | None -> Alcotest.fail "expected path")

let test_hop_layers () =
  let g, s, a, c, _, _, l_sc = tiny_graph () in
  Graph.fail_link g l_sc;
  let layers = Graph.hop_layers g s in
  Alcotest.(check int) "3 layers" 3 (Array.length layers);
  Alcotest.(check (list int)) "layer0" [ s ] layers.(0);
  Alcotest.(check (list int)) "layer1" [ a ] layers.(1);
  Alcotest.(check (list int)) "layer2" [ c ] layers.(2)

let test_link_between () =
  let g, s, _, c, _, _, l_sc = tiny_graph () in
  (match Graph.link_between g s c with
  | Some l -> Alcotest.(check int) "found direct" l_sc l
  | None -> Alcotest.fail "expected link");
  Graph.fail_link g l_sc;
  Alcotest.(check bool) "down link invisible" true (Graph.link_between g s c = None)

let test_self_loop_rejected () =
  let b = Graph.Builder.create () in
  let s = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:0 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.Builder.add_duplex: self-loop") (fun () ->
      ignore (Graph.Builder.add_duplex b ~bandwidth:1.0 s s))

(* ------------------------------------------------------------------ *)
(* Fat-tree structure                                                  *)
(* ------------------------------------------------------------------ *)

let test_fat_tree_counts () =
  let f = Fat_tree.create ~k:4 () in
  Alcotest.(check int) "pods" 4 f.Fat_tree.pods;
  Alcotest.(check int) "tors" 8 (Array.length f.Fat_tree.tors);
  Alcotest.(check int) "aggs" 8 (Array.length f.Fat_tree.aggs);
  Alcotest.(check int) "cores" 4 (Array.length f.Fat_tree.cores);
  Alcotest.(check int) "hosts" 16 (Fat_tree.num_hosts f);
  Alcotest.(check int) "gpus" 0 (Fat_tree.num_gpus f)

let test_fat_tree_k8_paper_config () =
  (* The paper's Fig. 5 fabric: 8-ary, 4 servers/ToR, 8 GPUs/server. *)
  let f = Fat_tree.create ~k:8 ~hosts_per_tor:4 ~gpus_per_host:8 () in
  Alcotest.(check int) "hosts" 128 (Fat_tree.num_hosts f);
  Alcotest.(check int) "gpus" 1024 (Fat_tree.num_gpus f)

let test_fat_tree_degrees () =
  let f = Fat_tree.create ~k:4 () in
  let g = f.Fat_tree.graph in
  (* Every ToR: k/2 aggs + hosts_per_tor hosts = 4 out-links for k=4. *)
  Array.iter
    (fun tor ->
      Alcotest.(check int) "tor degree" 4 (Array.length (Graph.out_links g tor)))
    f.Fat_tree.tors;
  (* Every agg: k/2 tors + k/2 cores. *)
  Array.iter
    (fun agg ->
      Alcotest.(check int) "agg degree" 4 (Array.length (Graph.out_links g agg)))
    f.Fat_tree.aggs;
  (* Every core: one link per pod. *)
  Array.iter
    (fun core ->
      Alcotest.(check int) "core degree" 4 (Array.length (Graph.out_links g core)))
    f.Fat_tree.cores

let test_fat_tree_distances () =
  let f = Fat_tree.create ~k:4 () in
  let g = f.Fat_tree.graph in
  let h0 = f.Fat_tree.hosts.(0) in
  let d = Graph.bfs_dist g h0 in
  (* Same-ToR host: 2 hops (up to ToR, down). *)
  let same_tor = f.Fat_tree.hosts_of_tor.(0).(1) in
  Alcotest.(check int) "same ToR" 2 d.(same_tor);
  (* Same-pod different ToR: 4 hops. *)
  let same_pod = f.Fat_tree.hosts_of_tor.(1).(0) in
  Alcotest.(check int) "same pod" 4 d.(same_pod);
  (* Cross-pod: 6 hops. *)
  let cross_pod = f.Fat_tree.hosts_of_tor.(2).(0) in
  Alcotest.(check int) "cross pod" 6 d.(cross_pod)

let test_fat_tree_gpu_distances () =
  let f = Fat_tree.create ~k:4 ~gpus_per_host:2 () in
  let g = f.Fat_tree.graph in
  let gpu0 = f.Fat_tree.gpus.(0) in
  let d = Graph.bfs_dist g gpu0 in
  (* Sibling GPU on the same host: 2 hops via the host. *)
  let sibling = f.Fat_tree.gpus_of_host.(0).(1) in
  Alcotest.(check int) "sibling gpu" 2 d.(sibling);
  (* Cross-pod GPU via dedicated NICs: tor-agg-core-agg-tor = 6 hops. *)
  let far_host_pos = Array.length f.Fat_tree.hosts - 1 in
  let far = f.Fat_tree.gpus_of_host.(far_host_pos).(0) in
  Alcotest.(check int) "far gpu" 6 d.(far)

let test_fat_tree_tor_of_host () =
  let f = Fat_tree.create ~k:4 () in
  Array.iteri
    (fun ti hs ->
      Array.iter
        (fun h ->
          Alcotest.(check int) "tor_of_host" f.Fat_tree.tors.(ti)
            f.Fat_tree.tor_of_host.(h))
        hs)
    f.Fat_tree.hosts_of_tor

let test_fat_tree_invalid_k () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Fat_tree.create: k must be even and >= 2") (fun () ->
      ignore (Fat_tree.create ~k:3 ()))

let test_fat_tree_failure_domains () =
  let f = Fat_tree.create ~k:4 () in
  let tor_up = Fat_tree.fabric_duplex_links f `Tor_up in
  let agg_up = Fat_tree.fabric_duplex_links f `Agg_up in
  let all = Fat_tree.fabric_duplex_links f `All in
  (* k=4: 4 pods x (2 tors x 2 aggs) = 16 tor-agg cables; same agg-core. *)
  Alcotest.(check int) "tor-agg cables" 16 (Array.length tor_up);
  Alcotest.(check int) "agg-core cables" 16 (Array.length agg_up);
  Alcotest.(check int) "all fabric cables" 32 (Array.length all)

(* Property: in a healthy fat-tree every host pair is connected and at
   even distance (up/down through layers). *)
let prop_fat_tree_host_distances =
  QCheck.Test.make ~name:"fat-tree host distances even and bounded" ~count:20
    QCheck.(pair (int_range 0 100) (int_range 0 100))
    (fun (i, j) ->
      let f = Fat_tree.create ~k:4 () in
      let hosts = f.Fat_tree.hosts in
      let a = hosts.(i mod Array.length hosts)
      and b = hosts.(j mod Array.length hosts) in
      let d = (Graph.bfs_dist f.Fat_tree.graph a).(b) in
      if a = b then d = 0 else d mod 2 = 0 && d >= 2 && d <= 6)

(* ------------------------------------------------------------------ *)
(* Leaf-spine structure                                                *)
(* ------------------------------------------------------------------ *)

let test_leaf_spine_counts () =
  let l = Leaf_spine.create ~spines:16 ~leaves:48 ~hosts_per_leaf:2 ~gpus_per_host:8 () in
  Alcotest.(check int) "spines" 16 (Array.length l.Leaf_spine.spines);
  Alcotest.(check int) "leaves" 48 (Array.length l.Leaf_spine.leaves);
  Alcotest.(check int) "hosts" 96 (Leaf_spine.num_hosts l);
  Alcotest.(check int) "gpus" 768 (Leaf_spine.num_gpus l);
  Alcotest.(check int) "spine-leaf cables" (16 * 48)
    (Array.length (Leaf_spine.spine_leaf_duplex_links l))

let test_leaf_spine_distances () =
  let l = Leaf_spine.create ~spines:2 ~leaves:2 ~hosts_per_leaf:4 () in
  let g = l.Leaf_spine.graph in
  let h0 = l.Leaf_spine.hosts.(0) in
  let d = Graph.bfs_dist g h0 in
  let same_leaf = l.Leaf_spine.hosts_of_leaf.(0).(1) in
  let other_leaf = l.Leaf_spine.hosts_of_leaf.(1).(0) in
  Alcotest.(check int) "same leaf" 2 d.(same_leaf);
  Alcotest.(check int) "other leaf" 4 d.(other_leaf)

let test_leaf_spine_full_bipartite () =
  let l = Leaf_spine.create ~spines:3 ~leaves:5 ~hosts_per_leaf:1 () in
  let g = l.Leaf_spine.graph in
  Array.iter
    (fun leaf ->
      Array.iter
        (fun spine ->
          Alcotest.(check bool) "leaf-spine link" true
            (Graph.link_between g leaf spine <> None))
        l.Leaf_spine.spines)
    l.Leaf_spine.leaves

(* ------------------------------------------------------------------ *)
(* Rail-optimized topology                                             *)
(* ------------------------------------------------------------------ *)

let test_rail_counts () =
  let r = Rail.create ~rails:8 ~groups:4 ~servers_per_group:16 ~spines:8 () in
  Alcotest.(check int) "tors" 32 (Array.length r.Rail.tors);
  Alcotest.(check int) "spines" 8 (Array.length r.Rail.spines);
  Alcotest.(check int) "hosts" 64 (Array.length r.Rail.hosts);
  Alcotest.(check int) "gpus" 512 (Rail.num_gpus r);
  Alcotest.(check int) "spine-tor cables" (32 * 8)
    (Array.length (Rail.spine_tor_duplex_links r))

let test_rail_same_rail_distance () =
  let r = Rail.create ~rails:4 ~groups:2 ~servers_per_group:4 ~spines:2 () in
  let g = r.Rail.graph in
  (* GPU 0 of server 0 and GPU 0 of server 1 (same group, same rail):
     2 hops through the shared rail ToR. *)
  let a = r.Rail.gpus_of_host.(0).(0) and b = r.Rail.gpus_of_host.(1).(0) in
  Alcotest.(check int) "same rail" 2 (Graph.bfs_dist g a).(b);
  (* Different rails, same server: 2 hops via NVSwitch. *)
  let c = r.Rail.gpus_of_host.(0).(1) in
  Alcotest.(check int) "cross rail same server" 2 (Graph.bfs_dist g a).(c);
  (* Different rails, different servers: NVSwitch hop + rail, or
     tor-spine-tor: 4 hops. *)
  let d = r.Rail.gpus_of_host.(1).(1) in
  Alcotest.(check int) "cross rail cross server" 4 (Graph.bfs_dist g a).(d)

let test_rail_fabric_facade () =
  let f = Fabric.rail ~rails:4 ~groups:2 ~servers_per_group:4 ~spines:2 () in
  Alcotest.(check int) "one pod" 1 (Fabric.pods f);
  Alcotest.(check int) "tors per pod" 8 (Fabric.tors_per_pod f);
  Alcotest.(check int) "endpoints" 32 (Array.length (Fabric.endpoints f));
  let gpu0 = (Fabric.gpus f).(0) in
  let tor = Fabric.attach_tor f gpu0 in
  Alcotest.(check int) "gpu0 on rail tor 0" (Fabric.tors f).(0) tor;
  Alcotest.(check bool) "tor_of_host rejected" true
    (try ignore (Fabric.tor_of_host f (Fabric.hosts f).(0)); false
     with Invalid_argument _ -> true)

let test_rail_gpu_rail_mapping () =
  let f = Fabric.rail ~rails:4 ~groups:2 ~servers_per_group:4 ~spines:2 () in
  (match f with
  | Fabric.Rl r ->
      (* GPU r of any server in group g attaches to tor g*rails + r. *)
      Array.iteri
        (fun hi ghost ->
          let group = hi / 4 in
          Array.iteri
            (fun rail gpu ->
              Alcotest.(check int) "rail tor"
                r.Rail.tors.((group * 4) + rail)
                (Fabric.attach_tor f gpu))
            ghost)
        r.Rail.gpus_of_host
  | _ -> Alcotest.fail "expected rail fabric")

(* ------------------------------------------------------------------ *)
(* Fabric facade + failures                                            *)
(* ------------------------------------------------------------------ *)

let test_fabric_endpoints () =
  let ft = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
  Alcotest.(check int) "gpu endpoints" 32 (Array.length (Fabric.endpoints ft));
  let ft_nog = Fabric.fat_tree ~k:4 () in
  Alcotest.(check int) "host endpoints" 16 (Array.length (Fabric.endpoints ft_nog))

let test_fabric_attach_tor () =
  let ft = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
  let gpu0 = (Fabric.gpus ft).(0) in
  let host0 = Fabric.host_of_gpu ft gpu0 in
  Alcotest.(check int) "gpu -> host -> tor" (Fabric.tor_of_host ft host0)
    (Fabric.attach_tor ft gpu0)

let test_fabric_pods () =
  let ft = Fabric.fat_tree ~k:8 () in
  Alcotest.(check int) "pods" 8 (Fabric.pods ft);
  Alcotest.(check int) "tors/pod" 4 (Fabric.tors_per_pod ft);
  let ls = Fabric.leaf_spine ~spines:4 ~leaves:6 ~hosts_per_leaf:2 () in
  Alcotest.(check int) "ls pods" 1 (Fabric.pods ls);
  Alcotest.(check int) "ls tors/pod" 6 (Fabric.tors_per_pod ls)

let test_fabric_tor_idx () =
  let ft = Fabric.fat_tree ~k:4 () in
  Array.iteri
    (fun p tors ->
      Array.iteri
        (fun i tor ->
          Alcotest.(check int) "pod" p (Fabric.pod_of_tor ft tor);
          Alcotest.(check int) "idx" i (Fabric.tor_idx_in_pod ft tor))
        tors)
    (Array.init (Fabric.pods ft) (Fabric.tors_of_pod ft))

let test_fail_random_count () =
  let ls = Fabric.leaf_spine ~spines:16 ~leaves:48 ~hosts_per_leaf:2 () in
  let rng = Rng.create 99 in
  let failed = Fabric.fail_random ls ~rng ~tier:`All ~fraction:0.1 () in
  Alcotest.(check int) "10% of 768" 77 (List.length failed);
  let g = Fabric.graph ls in
  List.iter
    (fun id -> Alcotest.(check bool) "down" false (Graph.link_up g id))
    failed;
  Alcotest.(check bool) "hosts still connected" true
    (Graph.connected g (Array.to_list (Fabric.hosts ls)))

let test_fail_random_zero () =
  let ls = Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:1 () in
  let rng = Rng.create 1 in
  let failed = Fabric.fail_random ls ~rng ~tier:`All ~fraction:0.0 () in
  Alcotest.(check int) "none failed" 0 (List.length failed)

let test_fail_random_deterministic () =
  let run seed =
    let ls = Fabric.leaf_spine ~spines:8 ~leaves:8 ~hosts_per_leaf:1 () in
    Fabric.fail_random ls ~rng:(Rng.create seed) ~tier:`All ~fraction:0.2 ()
  in
  Alcotest.(check (list int)) "same seed, same failures" (run 5) (run 5)

let test_fail_recover_round_trip () =
  (* fail_link + recover_link must restore the graph bit-for-bit:
     same up flags, same adjacency. *)
  let ls = Fabric.leaf_spine ~spines:3 ~leaves:4 ~hosts_per_leaf:2 () in
  let g = Fabric.graph ls in
  let snapshot () =
    ( Array.map (fun (l : Graph.link) -> l.Graph.up) (Graph.links g),
      Array.init (Graph.num_nodes g) (fun v ->
          Array.to_list (Graph.out_links g v)) )
  in
  let before = snapshot () in
  let victim = (Array.to_list (Fabric.failure_domain ls `All)) |> List.hd in
  Graph.fail_link g victim;
  Alcotest.(check bool) "down" false (Graph.link_up g victim);
  Alcotest.(check bool) "peer down" false
    (Graph.link_up g (Graph.peer_link victim));
  Graph.recover_link g victim;
  let after = snapshot () in
  Alcotest.(check bool) "up flags restored" true (fst before = fst after);
  Alcotest.(check bool) "adjacency untouched" true (snd before = snd after)

(* Returned duplex ids are actually down (both directions), and their
   endpoints stay mutually reachable over the surviving links.  The
   fraction is kept below [1/leaves] of the links so no spine can lose
   its whole uplink set; the connectivity guarantee covers the rest. *)
let prop_fail_random_down_and_endpoints_reachable =
  QCheck.Test.make ~name:"fail_random: ids down, endpoints still reachable"
    ~count:30
    QCheck.(pair (int_range 0 10000) (int_range 1 15))
    (fun (seed, pct) ->
      let ls = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:1 () in
      let g = Fabric.graph ls in
      let failed =
        Fabric.fail_random ls ~rng:(Rng.create seed) ~tier:`All
          ~fraction:(float_of_int pct /. 100.0)
          ()
      in
      List.for_all
        (fun id ->
          let l = Graph.link g id in
          (not (Graph.link_up g id))
          && (not (Graph.link_up g (Graph.peer_link id)))
          && Graph.connected g [ l.Graph.src; l.Graph.dst ])
        failed)

(* Repeated draws never resurrect previously failed links: earlier
   victims stay down (a failed retry must only restore its own picks),
   and later draws never re-pick a down link. *)
let prop_fail_random_never_resurrects =
  QCheck.Test.make ~name:"fail_random never resurrects earlier failures"
    ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let ls = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:1 () in
      let g = Fabric.graph ls in
      let rng = Rng.create seed in
      let first = Fabric.fail_random ls ~rng ~tier:`All ~fraction:0.08 () in
      let second = Fabric.fail_random ls ~rng ~tier:`All ~fraction:0.08 () in
      List.for_all (fun id -> not (Graph.link_up g id)) first
      && List.for_all (fun id -> not (List.mem id first)) second)

let prop_fail_random_keeps_hosts_connected =
  QCheck.Test.make ~name:"fail_random preserves host connectivity" ~count:25
    QCheck.(pair (int_range 0 10000) (int_range 1 10))
    (fun (seed, pct) ->
      let ls = Fabric.leaf_spine ~spines:4 ~leaves:6 ~hosts_per_leaf:2 () in
      let rng = Rng.create seed in
      let _ =
        Fabric.fail_random ls ~rng ~tier:`All
          ~fraction:(float_of_int pct /. 100.0)
          ()
      in
      Graph.connected (Fabric.graph ls) (Array.to_list (Fabric.hosts ls)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_topology"
    [
      ( "graph",
        [
          Alcotest.test_case "duplex pairing" `Quick test_duplex_pairing;
          Alcotest.test_case "bfs distances" `Quick test_bfs_dist;
          Alcotest.test_case "bfs after failure" `Quick test_bfs_after_failure;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "hop layers" `Quick test_hop_layers;
          Alcotest.test_case "link_between" `Quick test_link_between;
          Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
        ] );
      ( "fat_tree",
        [
          Alcotest.test_case "counts k=4" `Quick test_fat_tree_counts;
          Alcotest.test_case "paper config k=8" `Quick test_fat_tree_k8_paper_config;
          Alcotest.test_case "degrees" `Quick test_fat_tree_degrees;
          Alcotest.test_case "host distances" `Quick test_fat_tree_distances;
          Alcotest.test_case "gpu distances" `Quick test_fat_tree_gpu_distances;
          Alcotest.test_case "tor_of_host" `Quick test_fat_tree_tor_of_host;
          Alcotest.test_case "invalid k" `Quick test_fat_tree_invalid_k;
          Alcotest.test_case "failure domains" `Quick test_fat_tree_failure_domains;
          qt prop_fat_tree_host_distances;
        ] );
      ( "leaf_spine",
        [
          Alcotest.test_case "counts (paper fig7)" `Quick test_leaf_spine_counts;
          Alcotest.test_case "distances" `Quick test_leaf_spine_distances;
          Alcotest.test_case "full bipartite" `Quick test_leaf_spine_full_bipartite;
        ] );
      ( "rail",
        [
          Alcotest.test_case "counts" `Quick test_rail_counts;
          Alcotest.test_case "distances" `Quick test_rail_same_rail_distance;
          Alcotest.test_case "facade" `Quick test_rail_fabric_facade;
          Alcotest.test_case "gpu-rail mapping" `Quick test_rail_gpu_rail_mapping;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "endpoints" `Quick test_fabric_endpoints;
          Alcotest.test_case "attach tor" `Quick test_fabric_attach_tor;
          Alcotest.test_case "pods" `Quick test_fabric_pods;
          Alcotest.test_case "tor idx" `Quick test_fabric_tor_idx;
          Alcotest.test_case "fail_random count" `Quick test_fail_random_count;
          Alcotest.test_case "fail_random zero" `Quick test_fail_random_zero;
          Alcotest.test_case "fail_random deterministic" `Quick test_fail_random_deterministic;
          Alcotest.test_case "fail/recover round trip" `Quick
            test_fail_recover_round_trip;
          qt prop_fail_random_keeps_hosts_connected;
          qt prop_fail_random_down_and_endpoints_reachable;
          qt prop_fail_random_never_resurrects;
        ] );
    ]
