(* Tests for peel_util: PRNG determinism and distributions, statistics,
   the event-queue heap, bit utilities, and table rendering. *)

open Peel_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let all_equal = ref true in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then all_equal := false
  done;
  Alcotest.(check bool) "different seeds differ" false !all_equal

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let a = Rng.bits64 parent and b = Rng.bits64 child in
  Alcotest.(check bool) "split stream differs" true (a <> b)

let test_rng_copy () =
  let a = Rng.create 9 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let t = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int t 10 in
    Alcotest.(check bool) "0 <= x < 10" true (x >= 0 && x < 10)
  done

let test_rng_int_invalid () =
  let t = Rng.create 3 in
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_rng_int_in () =
  let t = Rng.create 4 in
  for _ = 1 to 500 do
    let x = Rng.int_in t (-5) 5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let t = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float t 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_rng_exponential_mean () =
  let t = Rng.create 6 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential t ~mean:3.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3.0" true (Float.abs (mean -. 3.0) < 0.15)

let test_rng_normal_moments () =
  let t = Rng.create 8 in
  let n = 20000 in
  let acc = Stats.Online.create () in
  for _ = 1 to n do
    Stats.Online.add acc (Rng.normal t ~mu:10.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean near 10" true (Float.abs (Stats.Online.mean acc -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Stats.Online.stddev acc -. 2.0) < 0.1)

let test_rng_normal_pos () =
  let t = Rng.create 11 in
  for _ = 1 to 2000 do
    let x = Rng.normal_pos t ~mu:0.01 ~sigma:0.005 in
    Alcotest.(check bool) "non-negative" true (x >= 0.0)
  done

let test_rng_shuffle_permutation () =
  let t = Rng.create 12 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let t = Rng.create 13 in
  let s = Rng.sample_without_replacement t 100 10 in
  Alcotest.(check int) "10 samples" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 100)) s

let test_rng_sample_all () =
  let t = Rng.create 14 in
  let s = Rng.sample_without_replacement t 5 5 in
  Alcotest.(check (list int)) "full range" [ 0; 1; 2; 3; 4 ] s

(* Property: sample_without_replacement always returns distinct sorted
   values in range. *)
let prop_sample =
  QCheck.Test.make ~name:"sample_without_replacement distinct sorted"
    QCheck.(pair (int_range 1 200) small_nat)
    (fun (n, k) ->
      let k = min k n in
      let t = Rng.create (n + (k * 1000)) in
      let s = Rng.sample_without_replacement t n k in
      List.length s = k
      && List.sort_uniq compare s = s
      && List.for_all (fun x -> x >= 0 && x < n) s)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_summary_basic () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "mean" 3.0 s.mean;
  check_float "min" 1.0 s.min;
  check_float "max" 5.0 s.max;
  check_float "p50" 3.0 s.p50;
  Alcotest.(check int) "count" 5 s.count

let test_stats_single () =
  let s = Stats.summarize [ 7.5 ] in
  check_float "mean" 7.5 s.mean;
  check_float "p99" 7.5 s.p99;
  check_float "stddev" 0.0 s.stddev

let test_stats_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_stats_percentile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  check_float "p50 interpolates" 5.0 (Stats.percentile sorted 0.5)

let test_stats_p99_tail () =
  (* 99 zeros and a single 100: p99 should be pulled toward the tail. *)
  let samples = Array.make 100 0.0 in
  samples.(99) <- 100.0;
  let s = Stats.summarize_array samples in
  Alcotest.(check bool) "p99 sees tail" true (s.p99 > 0.0);
  check_float "mean" 1.0 s.mean

let test_stats_online_matches_batch () =
  let rng = Rng.create 21 in
  let xs = List.init 1000 (fun _ -> Rng.float rng 100.0) in
  let acc = Stats.Online.create () in
  List.iter (Stats.Online.add acc) xs;
  let batch = Stats.summarize xs in
  Alcotest.(check bool) "mean matches" true
    (Float.abs (Stats.Online.mean acc -. batch.mean) < 1e-9);
  Alcotest.(check bool) "stddev matches" true
    (Float.abs (Stats.Online.stddev acc -. batch.stddev) < 1e-6)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -3.0; 42.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "bin 0 (incl. clamp below)" 2 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9 (incl. clamp above)" 2 counts.(9);
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in q"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range 0.0 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let p25 = Stats.percentile a 0.25
      and p50 = Stats.percentile a 0.50
      and p75 = Stats.percentile a 0.75 in
      p25 <= p50 && p50 <= p75)

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean within [min,max]"
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.summarize xs in
      s.min <= s.mean && s.mean <= s.max && s.min <= s.p99 && s.p99 <= s.max)

(* ------------------------------------------------------------------ *)
(* Pairing_heap                                                        *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Pairing_heap.create () in
  List.iter (fun (p, v) -> Pairing_heap.push h p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let order = ref [] in
  let rec drain () =
    match Pairing_heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "min-first" [ "z"; "a"; "b"; "c" ] (List.rev !order)

let test_heap_fifo_ties () =
  let h = Pairing_heap.create () in
  List.iter (fun v -> Pairing_heap.push h 1.0 v) [ 1; 2; 3; 4; 5 ];
  let out = ref [] in
  let rec drain () =
    match Pairing_heap.pop h with
    | None -> ()
    | Some (_, v) ->
        out := v :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order for equal priorities" [ 1; 2; 3; 4; 5 ]
    (List.rev !out)

let test_heap_empty () =
  let h = Pairing_heap.create () in
  Alcotest.(check bool) "empty" true (Pairing_heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Pairing_heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Pairing_heap.peek h = None)

let test_heap_interleaved () =
  let h = Pairing_heap.create () in
  Pairing_heap.push h 5.0 5;
  Pairing_heap.push h 1.0 1;
  (match Pairing_heap.pop h with
  | Some (p, v) ->
      check_float "prio" 1.0 p;
      Alcotest.(check int) "val" 1 v
  | None -> Alcotest.fail "expected element");
  Pairing_heap.push h 0.5 0;
  (match Pairing_heap.peek h with
  | Some (_, v) -> Alcotest.(check int) "peek smallest" 0 v
  | None -> Alcotest.fail "expected element");
  Alcotest.(check int) "length" 2 (Pairing_heap.length h)

let test_heap_clear () =
  let h = Pairing_heap.create () in
  Pairing_heap.push h 1.0 ();
  Pairing_heap.clear h;
  Alcotest.(check bool) "cleared" true (Pairing_heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order"
    QCheck.(list (float_range 0.0 1e6))
    (fun xs ->
      let h = Pairing_heap.create () in
      List.iter (fun x -> Pairing_heap.push h x x) xs;
      let rec drain acc =
        match Pairing_heap.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare xs)

let test_heap_tiebreak_at_scale () =
  (* 1e5 equal-priority entries must drain in exact insertion order:
     the tiebreak is what keeps big simulations deterministic, and this
     size crosses many grow boundaries and deep sift paths. *)
  let n = 100_000 in
  let h = Pairing_heap.create () in
  (* A few distinct priorities, heavily duplicated, pushed round-robin:
     per priority the values must still come out in insertion order. *)
  for i = 0 to n - 1 do
    Pairing_heap.push h (float_of_int (i mod 4)) i
  done;
  let last_seen = Array.make 4 (-1) in
  let rec drain prev_prio =
    match Pairing_heap.pop h with
    | None -> ()
    | Some (p, v) ->
        if p < prev_prio then Alcotest.fail "priority went backwards";
        let b = int_of_float p in
        if v <= last_seen.(b) then
          Alcotest.failf "FIFO violated at prio %d: %d after %d" b v last_seen.(b);
        last_seen.(b) <- v;
        drain p
  in
  drain neg_infinity;
  (* The last value drained per priority must be the last pushed. *)
  Array.iteri
    (fun b last ->
      Alcotest.(check int)
        (Printf.sprintf "bucket %d drained fully" b)
        (n - 4 + b) last)
    last_seen

let test_heap_grow_boundary () =
  (* The backing arrays start at 16 and double; exercise push/pop right
     at the boundaries, including popping down across one. *)
  let h = Pairing_heap.create () in
  List.iter
    (fun n ->
      for i = 0 to n - 1 do
        Pairing_heap.push h (float_of_int (n - i)) i
      done;
      Alcotest.(check int) "length" n (Pairing_heap.length h);
      let prev = ref neg_infinity in
      for _ = 1 to n do
        match Pairing_heap.pop h with
        | None -> Alcotest.fail "heap drained early"
        | Some (p, _) ->
            if p < !prev then Alcotest.fail "priority went backwards";
            prev := p
      done;
      Alcotest.(check bool) "drained" true (Pairing_heap.is_empty h))
    [ 15; 16; 17; 31; 32; 33 ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_par_map_basic () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
  let l = List.init 100 Fun.id in
  Alcotest.(check (list int)) "matches List.map"
    (List.map (fun x -> (x * x) + 1) l)
    (Pool.par_map ~pool (fun x -> (x * x) + 1) l);
  Alcotest.(check (list int)) "empty" [] (Pool.par_map ~pool Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Pool.par_map ~pool (fun x -> x * x) [ 3 ])

let prop_pool_matches_list_map =
  (* The determinism contract: input order out, for every worker count
     and every chunk size. *)
  QCheck.Test.make ~name:"par_map f l = List.map f l for any jobs/chunk"
    QCheck.(
      triple (int_range 1 6) (int_range 1 10)
        (list_of_size (Gen.int_range 0 60) small_int))
    (fun (jobs, chunk, l) ->
      let pool = Pool.create ~jobs () in
      Pool.par_map ~pool ~chunk (fun x -> (2 * x) - 7) l
      = List.map (fun x -> (2 * x) - 7) l)

let test_pool_exception_lowest_index () =
  let pool = Pool.create ~jobs:4 () in
  let f i = if i >= 3 then failwith (string_of_int i) else i in
  Alcotest.check_raises "lowest failing index wins" (Failure "3") (fun () ->
      ignore (Pool.par_map ~pool ~chunk:1 f (List.init 10 Fun.id)))

let test_pool_nested_sequential () =
  (* A par_map inside a worker must fall back to List.map rather than
     spawn domains from domains; the result is still the plain map. *)
  let pool = Pool.create ~jobs:3 () in
  let inner x = Pool.par_map ~pool (fun y -> x + y) [ 1; 2; 3 ] in
  Alcotest.(check (list (list int))) "nested result"
    (List.map (fun x -> [ x + 1; x + 2; x + 3 ]) [ 10; 20; 30; 40 ])
    (Pool.par_map ~pool inner [ 10; 20; 30; 40 ])

let test_pool_validation () =
  Alcotest.check_raises "create 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  Alcotest.check_raises "set_default_jobs 0"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1") (fun () ->
      Pool.set_default_jobs 0);
  let pool = Pool.create ~jobs:2 () in
  Alcotest.check_raises "chunk 0"
    (Invalid_argument "Pool.par_map: chunk must be >= 1") (fun () ->
      ignore (Pool.par_map ~pool ~chunk:0 Fun.id [ 1; 2 ]))

let test_pool_default_jobs_override () =
  Pool.set_default_jobs 5;
  Alcotest.(check int) "override respected" 5 (Pool.default_jobs ());
  Pool.set_default_jobs 1;
  Alcotest.(check int) "reset" 1 (Pool.default_jobs ())

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)
(* ------------------------------------------------------------------ *)

let test_bits_power_of_two () =
  Alcotest.(check bool) "1" true (Bits.is_power_of_two 1);
  Alcotest.(check bool) "64" true (Bits.is_power_of_two 64);
  Alcotest.(check bool) "63" false (Bits.is_power_of_two 63);
  Alcotest.(check bool) "0" false (Bits.is_power_of_two 0);
  Alcotest.(check bool) "-4" false (Bits.is_power_of_two (-4))

let test_bits_ilog2 () =
  Alcotest.(check int) "ilog2 1" 0 (Bits.ilog2 1);
  Alcotest.(check int) "ilog2 2" 1 (Bits.ilog2 2);
  Alcotest.(check int) "ilog2 3" 1 (Bits.ilog2 3);
  Alcotest.(check int) "ilog2 1024" 10 (Bits.ilog2 1024)

let test_bits_ceil_log2 () =
  Alcotest.(check int) "ceil_log2 1" 0 (Bits.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 3" 2 (Bits.ceil_log2 3);
  Alcotest.(check int) "ceil_log2 4" 2 (Bits.ceil_log2 4);
  Alcotest.(check int) "ceil_log2 5" 3 (Bits.ceil_log2 5)

let test_bits_misc () =
  Alcotest.(check int) "pow2 10" 1024 (Bits.pow2 10);
  Alcotest.(check int) "ceil_div" 4 (Bits.ceil_div 7 2);
  Alcotest.(check int) "popcount 255" 8 (Bits.popcount 255);
  Alcotest.(check bool) "bit 5 0" true (Bits.bit 5 0);
  Alcotest.(check bool) "bit 5 1" false (Bits.bit 5 1);
  Alcotest.(check string) "render" "101" (Bits.bits_to_string ~width:3 5)

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"pow2 inverts ilog2 on powers of two"
    QCheck.(int_range 0 60)
    (fun n -> Bits.ilog2 (Bits.pow2 n) = n)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "contains separator" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '-') lines)

let test_table_pads_short_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_formats () =
  Alcotest.(check string) "seconds" "1.500 s" (Table.fsec 1.5);
  Alcotest.(check string) "millis" "2.000 ms" (Table.fsec 0.002);
  Alcotest.(check string) "micros" "85.0 us" (Table.fsec 85e-6);
  Alcotest.(check string) "bytes" "8 B" (Table.fbytes 8.0);
  Alcotest.(check string) "kb" "1.50 KB" (Table.fbytes 1500.0);
  Alcotest.(check string) "factor" "5.2x" (Table.ffactor 5.2)

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_write () =
  Alcotest.(check string) "scalars" {|[null,true,false,0,-1.5,"a"]|}
    (Json.to_string
       (Json.Arr
          [ Json.Null; Json.Bool true; Json.Bool false; Json.num 0.0;
            Json.num (-1.5); Json.str "a" ]));
  Alcotest.(check string) "object" {|{"k":1,"s":"v"}|}
    (Json.to_string (Json.Obj [ ("k", Json.int 1); ("s", Json.str "v") ]));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (Json.to_string (Json.str "a\"b\\c\nd"));
  Alcotest.(check string) "non-finite is null" "[null,null,null]"
    (Json.to_string (Json.Arr [ Json.num nan; Json.num infinity; Json.num neg_infinity ]))

let test_json_parse () =
  (match parse_ok {| { "a" : [1, 2.5e1, -3], "b" : "xA\n" } |} with
  | Json.Obj [ ("a", Json.Arr nums); ("b", Json.Str s) ] ->
      Alcotest.(check (list (float 0.0))) "numbers" [ 1.0; 25.0; -3.0 ]
        (List.map (fun v -> Option.get (Json.get_num v)) nums);
      Alcotest.(check string) "escapes decoded" "xA\n" s
  | _ -> Alcotest.fail "unexpected shape");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad))
    [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}"; "nan";
      "\"bad \\x escape\"" ]

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("ints", Json.Arr [ Json.int 0; Json.int (-7); Json.num 1e15 ]);
        ("floats", Json.Arr [ Json.num 0.1; Json.num 1.5e-300; Json.num 3.14159 ]);
        ("deep", Json.Obj [ ("x", Json.Arr [ Json.Obj []; Json.Arr [] ]) ]);
        ("unicode", Json.str "caf\xc3\xa9 \t \x01");
      ]
  in
  Alcotest.(check bool) "parse inverts to_string" true
    (parse_ok (Json.to_string v) = v)

let test_json_accessors () =
  let v = parse_ok {|{"n":4,"s":"hi","a":[1],"b":true}|} in
  Alcotest.(check (option (float 0.0))) "num" (Some 4.0)
    (Option.bind (Json.member "n" v) Json.get_num);
  Alcotest.(check (option string)) "str" (Some "hi")
    (Option.bind (Json.member "s" v) Json.get_str);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (Json.member "b" v) Json.get_bool);
  Alcotest.(check bool) "arr" true
    (Option.bind (Json.member "a" v) Json.get_arr = Some [ Json.Num 1.0 ]);
  Alcotest.(check bool) "missing member" true (Json.member "zz" v = None);
  Alcotest.(check bool) "wrong type" true (Json.get_num (Json.str "x") = None)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Slow test_rng_normal_moments;
          Alcotest.test_case "normal_pos nonneg" `Quick test_rng_normal_pos;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_rng_sample_without_replacement;
          Alcotest.test_case "sample all" `Quick test_rng_sample_all;
          qt prop_sample;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary basic" `Quick test_stats_summary_basic;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "empty raises" `Quick test_stats_empty;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interpolation;
          Alcotest.test_case "p99 tail" `Quick test_stats_p99_tail;
          Alcotest.test_case "online matches batch" `Quick test_stats_online_matches_batch;
          Alcotest.test_case "histogram" `Quick test_histogram;
          qt prop_percentile_monotone;
          qt prop_summary_bounds;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "tiebreak at 1e5" `Quick test_heap_tiebreak_at_scale;
          Alcotest.test_case "grow boundary" `Quick test_heap_grow_boundary;
          qt prop_heap_sorts;
        ] );
      ( "pool",
        [
          Alcotest.test_case "par_map basic" `Quick test_pool_par_map_basic;
          Alcotest.test_case "exception lowest index" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "nested sequential" `Quick test_pool_nested_sequential;
          Alcotest.test_case "validation" `Quick test_pool_validation;
          Alcotest.test_case "default jobs override" `Quick
            test_pool_default_jobs_override;
          qt prop_pool_matches_list_map;
        ] );
      ( "bits",
        [
          Alcotest.test_case "power of two" `Quick test_bits_power_of_two;
          Alcotest.test_case "ilog2" `Quick test_bits_ilog2;
          Alcotest.test_case "ceil_log2" `Quick test_bits_ceil_log2;
          Alcotest.test_case "misc" `Quick test_bits_misc;
          qt prop_bits_roundtrip;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "json",
        [
          Alcotest.test_case "write" `Quick test_json_write;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
    ]
