(* Tests for peel_steiner: tree structure invariants, symmetric-optimal
   construction (Lemma 2.1), the layer-peeling greedy (§2.3) including
   its approximation bound (Lemma 2.3 / Theorem 2.5), and the exact
   Dreyfus-Wagner ground truth. *)

open Peel_topology
open Peel_steiner
module Rng = Peel_util.Rng

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let line_graph n =
  (* 0 - 1 - 2 - ... - (n-1) *)
  let b = Graph.Builder.create () in
  let nodes = Array.init n (fun i -> Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:i) in
  for i = 0 to n - 2 do
    ignore (Graph.Builder.add_duplex b ~bandwidth:1e9 nodes.(i) nodes.(i + 1))
  done;
  (Graph.Builder.finish b, nodes)

let expect_tree = function
  | Some t -> t
  | None -> Alcotest.fail "expected a tree"

let check_valid g tree ~dests =
  match Tree.validate g tree ~dests with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("tree invalid: " ^ e)

(* ------------------------------------------------------------------ *)
(* Tree                                                                *)
(* ------------------------------------------------------------------ *)

let test_tree_of_parents_basic () =
  let g, nodes = line_graph 3 in
  let lid01 = Option.get (Graph.link_between g nodes.(0) nodes.(1)) in
  let lid12 = Option.get (Graph.link_between g nodes.(1) nodes.(2)) in
  let t =
    Tree.of_parents g ~root:nodes.(0)
      ~parents:[ (nodes.(1), (nodes.(0), lid01)); (nodes.(2), (nodes.(1), lid12)) ]
  in
  Alcotest.(check int) "cost" 2 (Tree.cost t);
  Alcotest.(check int) "root" nodes.(0) (Tree.root t);
  Alcotest.(check (list int)) "members" [ 0; 1; 2 ] (Tree.members t);
  Alcotest.(check int) "depth of 2" 2 (Tree.depth t nodes.(2));
  Alcotest.(check int) "max depth" 2 (Tree.max_depth t);
  Alcotest.(check (list int)) "path" [ 0; 1; 2 ] (Tree.path_from_root t nodes.(2));
  Alcotest.(check bool) "mem" true (Tree.mem t nodes.(1));
  check_valid g t ~dests:[ nodes.(2) ]

let test_tree_children () =
  let g, nodes = line_graph 3 in
  let lid01 = Option.get (Graph.link_between g nodes.(0) nodes.(1)) in
  let t = Tree.of_parents g ~root:nodes.(0) ~parents:[ (nodes.(1), (nodes.(0), lid01)) ] in
  (match Tree.children t nodes.(0) with
  | [ (c, l) ] ->
      Alcotest.(check int) "child" nodes.(1) c;
      Alcotest.(check int) "link" lid01 l
  | _ -> Alcotest.fail "expected one child");
  Alcotest.(check (list (pair int int))) "leaf has no children" []
    (Tree.children t nodes.(1))

let test_tree_rejects_wrong_link () =
  let g, nodes = line_graph 3 in
  let lid01 = Option.get (Graph.link_between g nodes.(0) nodes.(1)) in
  (* Use the 0->1 link to claim 2's parent is 1: endpoints don't match. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tree.of_parents g ~root:nodes.(0) ~parents:[ (nodes.(2), (nodes.(1), lid01)) ]);
       false
     with Invalid_argument _ -> true)

let test_tree_rejects_orphan_chain () =
  let g, nodes = line_graph 4 in
  let lid23 = Option.get (Graph.link_between g nodes.(2) nodes.(3)) in
  (* Node 3 hangs off node 2, but node 2 has no chain to the root. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tree.of_parents g ~root:nodes.(0) ~parents:[ (nodes.(3), (nodes.(2), lid23)) ]);
       false
     with Invalid_argument _ -> true)

let test_tree_rejects_duplicate () =
  let g, nodes = line_graph 3 in
  let lid01 = Option.get (Graph.link_between g nodes.(0) nodes.(1)) in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Tree.of_parents g ~root:nodes.(0)
            ~parents:[ (nodes.(1), (nodes.(0), lid01)); (nodes.(1), (nodes.(0), lid01)) ]);
       false
     with Invalid_argument _ -> true)

let test_tree_validate_down_link () =
  let g, nodes = line_graph 3 in
  let lid01 = Option.get (Graph.link_between g nodes.(0) nodes.(1)) in
  let t = Tree.of_parents g ~root:nodes.(0) ~parents:[ (nodes.(1), (nodes.(0), lid01)) ] in
  Graph.fail_link g lid01;
  (match Tree.validate g t ~dests:[ nodes.(1) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected failure on down link");
  Graph.restore_all g

let test_tree_validate_missing_dest () =
  let g, nodes = line_graph 3 in
  let lid01 = Option.get (Graph.link_between g nodes.(0) nodes.(1)) in
  let t = Tree.of_parents g ~root:nodes.(0) ~parents:[ (nodes.(1), (nodes.(0), lid01)) ] in
  match Tree.validate g t ~dests:[ nodes.(2) ] with
  | Error msg ->
      Alcotest.(check bool) "mentions missing dest" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected missing-destination error"

(* ------------------------------------------------------------------ *)
(* Exact (Dreyfus-Wagner)                                              *)
(* ------------------------------------------------------------------ *)

let test_exact_two_terminals_is_distance () =
  let g, nodes = line_graph 6 in
  Alcotest.(check (option int)) "path length" (Some 5)
    (Exact.steiner_cost g ~terminals:[ nodes.(0); nodes.(5) ])

let test_exact_star () =
  (* Hub 0 with 4 rays: spanning all leaves costs 4. *)
  let b = Graph.Builder.create () in
  let hub = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:0 in
  let leaves =
    Array.init 4 (fun i ->
        let v = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:i in
        ignore (Graph.Builder.add_duplex b ~bandwidth:1e9 hub v);
        v)
  in
  let g = Graph.Builder.finish b in
  Alcotest.(check (option int)) "star" (Some 4)
    (Exact.steiner_cost g ~terminals:(Array.to_list leaves))

let test_exact_trivial () =
  let g, nodes = line_graph 3 in
  Alcotest.(check (option int)) "empty" (Some 0) (Exact.steiner_cost g ~terminals:[]);
  Alcotest.(check (option int)) "singleton" (Some 0)
    (Exact.steiner_cost g ~terminals:[ nodes.(1) ])

let test_exact_disconnected () =
  let g, nodes = line_graph 3 in
  let lid = Option.get (Graph.link_between g nodes.(1) nodes.(2)) in
  Graph.fail_link g lid;
  Alcotest.(check (option int)) "unreachable" None
    (Exact.steiner_cost g ~terminals:[ nodes.(0); nodes.(2) ]);
  Graph.restore_all g

let test_exact_too_many_terminals () =
  let g, nodes = line_graph 20 in
  let terms = Array.to_list (Array.sub nodes 0 13) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exact.steiner_cost g ~terminals:terms);
       false
     with Invalid_argument _ -> true)

let test_exact_steiner_point_helps () =
  (* Spider: center c, three legs of length 2 to terminals.  The optimal
     tree uses the non-terminal center: cost 6. *)
  let b = Graph.Builder.create () in
  let c = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:0 in
  let terms =
    List.init 3 (fun i ->
        let mid = Graph.Builder.add_node b Graph.Tor ~pod:0 ~idx:(10 + i) in
        let t = Graph.Builder.add_node b Graph.Host ~pod:0 ~idx:i in
        ignore (Graph.Builder.add_duplex b ~bandwidth:1e9 c mid);
        ignore (Graph.Builder.add_duplex b ~bandwidth:1e9 mid t);
        t)
  in
  let g = Graph.Builder.finish b in
  Alcotest.(check (option int)) "spider" (Some 6) (Exact.steiner_cost g ~terminals:terms)

(* ------------------------------------------------------------------ *)
(* Symmetric optimal (Lemma 2.1)                                       *)
(* ------------------------------------------------------------------ *)

let test_symmetric_leaf_spine_matches_exact () =
  let f = Fabric.leaf_spine ~spines:2 ~leaves:3 ~hosts_per_leaf:2 () in
  let hosts = Fabric.hosts f in
  let source = hosts.(0) in
  let dests = [ hosts.(1); hosts.(2); hosts.(4) ] in
  let t = Symmetric.build f ~source ~dests in
  check_valid (Fabric.graph f) t ~dests;
  let exact = Option.get (Exact.steiner_cost (Fabric.graph f) ~terminals:(source :: dests)) in
  Alcotest.(check int) "optimal cost" exact (Tree.cost t)

let test_symmetric_fat_tree_matches_exact () =
  let f = Fabric.fat_tree ~k:4 () in
  let hosts = Fabric.hosts f in
  (* Destinations spanning same-ToR, same-pod and cross-pod cases. *)
  let source = hosts.(0) in
  let dests = [ hosts.(1); hosts.(3); hosts.(8); hosts.(15) ] in
  let t = Symmetric.build f ~source ~dests in
  check_valid (Fabric.graph f) t ~dests;
  let exact = Option.get (Exact.steiner_cost (Fabric.graph f) ~terminals:(source :: dests)) in
  Alcotest.(check int) "optimal cost" exact (Tree.cost t)

let test_symmetric_same_host_gpus () =
  let f = Fabric.fat_tree ~k:4 ~gpus_per_host:4 () in
  (match f with
  | Fabric.Ft ft ->
      let gpus0 = ft.Fat_tree.gpus_of_host.(0) in
      let source = gpus0.(0) in
      let dests = [ gpus0.(1); gpus0.(2) ] in
      let t = Symmetric.build f ~source ~dests in
      check_valid (Fabric.graph f) t ~dests;
      (* gpu -> host -> 2 gpus: 3 NVLink edges, no fabric edge. *)
      Alcotest.(check int) "3 edges" 3 (Tree.cost t)
  | Fabric.Ls _ | Fabric.Rl _ | Fabric.Zo _ -> Alcotest.fail "expected fat-tree")

let test_symmetric_cross_pod_gpu () =
  let f = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
  let gpus = Fabric.gpus f in
  let source = gpus.(0) in
  let dest = gpus.(Array.length gpus - 1) in
  let t = Symmetric.build f ~source ~dests:[ dest ] in
  check_valid (Fabric.graph f) t ~dests:[ dest ];
  (* gpu-NIC->tor->agg->core->agg->tor->gpu-NIC = 6 edges. *)
  Alcotest.(check int) "6 edges" 6 (Tree.cost t)

let test_symmetric_source_in_dests_ignored () =
  let f = Fabric.leaf_spine ~spines:2 ~leaves:2 ~hosts_per_leaf:2 () in
  let hosts = Fabric.hosts f in
  let t = Symmetric.build f ~source:hosts.(0) ~dests:[ hosts.(0); hosts.(1) ] in
  check_valid (Fabric.graph f) t ~dests:[ hosts.(1) ]

let test_symmetric_broadcast_cost_formula () =
  (* Full-fabric broadcast in a leaf-spine: cost = hosts-1 (down edges to
     other hosts) + 1 (src->leaf) + 1 (leaf->spine) + (leaves-1). *)
  let spines = 4 and leaves = 4 and hpl = 4 in
  let f = Fabric.leaf_spine ~spines ~leaves ~hosts_per_leaf:hpl () in
  let hosts = Fabric.hosts f in
  let source = hosts.(0) in
  let dests = Array.to_list (Array.sub hosts 1 (Array.length hosts - 1)) in
  let t = Symmetric.build f ~source ~dests in
  check_valid (Fabric.graph f) t ~dests;
  let expected = (leaves * hpl) - 1 + 1 + 1 + (leaves - 1) in
  Alcotest.(check int) "broadcast cost" expected (Tree.cost t)

(* ------------------------------------------------------------------ *)
(* Layer-peeling greedy                                                *)
(* ------------------------------------------------------------------ *)

let test_peel_symmetric_equals_optimal_leaf_spine () =
  let f = Fabric.leaf_spine ~spines:3 ~leaves:4 ~hosts_per_leaf:2 () in
  let hosts = Fabric.hosts f in
  let source = hosts.(0) in
  let dests = [ hosts.(2); hosts.(3); hosts.(5); hosts.(7) ] in
  let greedy = expect_tree (Layer_peel.build (Fabric.graph f) ~source ~dests) in
  check_valid (Fabric.graph f) greedy ~dests;
  let opt = Symmetric.build f ~source ~dests in
  Alcotest.(check int) "greedy = optimal in symmetric fabric" (Tree.cost opt)
    (Tree.cost greedy)

let test_peel_symmetric_equals_optimal_fat_tree () =
  let f = Fabric.fat_tree ~k:4 () in
  let hosts = Fabric.hosts f in
  let source = hosts.(0) in
  let dests = [ hosts.(1); hosts.(5); hosts.(9); hosts.(13) ] in
  let greedy = expect_tree (Layer_peel.build (Fabric.graph f) ~source ~dests) in
  check_valid (Fabric.graph f) greedy ~dests;
  let opt = Symmetric.build f ~source ~dests in
  Alcotest.(check int) "greedy = optimal in symmetric fat-tree" (Tree.cost opt)
    (Tree.cost greedy)

let test_peel_unreachable_dest () =
  let g, nodes = line_graph 3 in
  Graph.fail_link g (Option.get (Graph.link_between g nodes.(1) nodes.(2)));
  Alcotest.(check bool) "None" true
    (Layer_peel.build g ~source:nodes.(0) ~dests:[ nodes.(2) ] = None);
  Graph.restore_all g

let test_peel_farthest_layer () =
  let f = Fabric.fat_tree ~k:4 () in
  let hosts = Fabric.hosts f in
  Alcotest.(check (option int)) "cross-pod F" (Some 6)
    (Layer_peel.farthest_layer (Fabric.graph f) ~source:hosts.(0)
       ~dests:[ hosts.(1); hosts.(15) ])

let test_peel_paper_example_shape () =
  (* An asymmetric leaf-spine akin to the paper's Fig. 2: failures force
     the greedy around missing links, and the tree must stay valid. *)
  let f = Fabric.leaf_spine ~spines:2 ~leaves:4 ~hosts_per_leaf:2 () in
  let g = Fabric.graph f in
  (match f with
  | Fabric.Ls ls ->
      (* Disconnect spine 0 from leaves 2 and 3: spine 1 must carry them. *)
      let spine0 = ls.Leaf_spine.spines.(0) in
      let leaf2 = ls.Leaf_spine.leaves.(2) and leaf3 = ls.Leaf_spine.leaves.(3) in
      Graph.fail_link g (Option.get (Graph.link_between g spine0 leaf2));
      Graph.fail_link g (Option.get (Graph.link_between g spine0 leaf3));
      let hosts = Fabric.hosts f in
      let source = hosts.(0) in
      let dests = [ hosts.(2); hosts.(4); hosts.(6) ] in
      let t = expect_tree (Layer_peel.build g ~source ~dests) in
      check_valid g t ~dests;
      (* spine1 covers leaves 1,2,3 with a single up pass: cost 1 (host->leaf)
         + 1 (leaf->spine1) + 3 (spine->leaves) + 3 (leaf->host) = 8. *)
      Alcotest.(check int) "routes around failures" 8 (Tree.cost t);
      Graph.restore_all g
  | Fabric.Ft _ | Fabric.Rl _ | Fabric.Zo _ -> Alcotest.fail "expected leaf-spine")

let test_peel_deterministic () =
  let f = Fabric.fat_tree ~k:4 () in
  let hosts = Fabric.hosts f in
  let source = hosts.(2) in
  let dests = [ hosts.(6); hosts.(10); hosts.(14) ] in
  let t1 = expect_tree (Layer_peel.build (Fabric.graph f) ~source ~dests) in
  let t2 = expect_tree (Layer_peel.build (Fabric.graph f) ~source ~dests) in
  Alcotest.(check (list int)) "same links"
    (List.sort compare (Tree.link_ids t1))
    (List.sort compare (Tree.link_ids t2))

(* Property: on random asymmetric leaf-spines the greedy tree is valid,
   spans all destinations, costs at least the exact optimum and at most
   |D| * F (Lemma 2.3). *)
let prop_peel_asymmetric =
  QCheck.Test.make ~name:"layer-peel: valid, bounded, >= exact optimum" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Fabric.leaf_spine ~spines:3 ~leaves:4 ~hosts_per_leaf:2 () in
      let g = Fabric.graph f in
      let _ = Fabric.fail_random f ~rng ~tier:`All ~fraction:0.25 () in
      let hosts = Fabric.hosts f in
      let n = Array.length hosts in
      let source = hosts.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 4
        |> List.map (fun i -> hosts.(i))
        |> List.filter (fun d -> d <> source)
      in
      let ok =
        match Layer_peel.build g ~source ~dests with
        | None -> false (* fail_random keeps hosts connected *)
        | Some t -> (
            match Tree.validate g t ~dests with
            | Error _ -> false
            | Ok () ->
                let cost = Tree.cost t in
                let far = Option.get (Layer_peel.farthest_layer g ~source ~dests) in
                let bound = List.length dests * far in
                let exact =
                  Option.get (Exact.steiner_cost g ~terminals:(source :: dests))
                in
                cost >= exact && cost <= max bound exact)
      in
      Graph.restore_all g;
      ok)

(* Property: on fat-trees with random ToR-uplink failures the greedy
   tree stays valid and within the Lemma 2.3 bound. *)
let prop_peel_fat_tree_failures =
  QCheck.Test.make ~name:"layer-peel valid on failed fat-trees" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
      let g = Fabric.graph f in
      let _ = Fabric.fail_random f ~rng ~tier:`All ~fraction:0.15 () in
      let eps = Fabric.endpoints f in
      let n = Array.length eps in
      let source = eps.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 6
        |> List.map (fun i -> eps.(i))
        |> List.filter (fun d -> d <> source)
      in
      let ok =
        match Layer_peel.build g ~source ~dests with
        | None -> dests = []
        | Some t -> (
            match Tree.validate g t ~dests with
            | Error _ -> false
            | Ok () ->
                let far =
                  Option.get (Layer_peel.farthest_layer g ~source ~dests)
                in
                Tree.cost t <= List.length dests * far)
      in
      Graph.restore_all g;
      ok)

(* Property: in symmetric leaf-spine fabrics greedy cost equals the
   Lemma 2.1 optimum. *)
let prop_peel_symmetric_optimal =
  QCheck.Test.make ~name:"layer-peel matches optimum in symmetric fabrics" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Fabric.leaf_spine ~spines:4 ~leaves:6 ~hosts_per_leaf:2 () in
      let hosts = Fabric.hosts f in
      let n = Array.length hosts in
      let source = hosts.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 5
        |> List.map (fun i -> hosts.(i))
        |> List.filter (fun d -> d <> source)
      in
      if dests = [] then true
      else begin
        let greedy =
          expect_tree (Layer_peel.build (Fabric.graph f) ~source ~dests)
        in
        let opt = Symmetric.build f ~source ~dests in
        Tree.cost greedy = Tree.cost opt
      end)

(* Property (Theorem 2.5, differential form): on small random fabrics —
   a k=4 fat-tree or a tiny leaf-spine — with random failure draws, the
   greedy cost stays within min(F, |D|) of the Dreyfus-Wagner exact
   optimum computed on the same failed graph.  This tightens the
   |D| * F envelope above: cost <= |D|*F = min*max <= min(F,|D|)*OPT
   since OPT >= F (farthest terminal) and OPT >= |D| (distinct parent
   edges). *)
let prop_peel_differential_min_bound =
  QCheck.Test.make ~name:"layer-peel <= min(F,|D|) x exact optimum" ~count:40
    QCheck.(pair bool (int_range 0 100000))
    (fun (fat, seed) ->
      let rng = Rng.create seed in
      let f =
        if fat then Fabric.fat_tree ~k:4 ()
        else Fabric.leaf_spine ~spines:2 ~leaves:4 ~hosts_per_leaf:2 ()
      in
      let g = Fabric.graph f in
      let _ = Fabric.fail_random f ~rng ~tier:`All ~fraction:0.2 () in
      let eps = Fabric.endpoints f in
      let n = Array.length eps in
      let source = eps.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 4
        |> List.map (fun i -> eps.(i))
        |> List.filter (fun d -> d <> source)
      in
      let ok =
        if dests = [] then true
        else
          match Layer_peel.build g ~source ~dests with
          | None -> false (* fail_random keeps endpoints connected *)
          | Some t -> (
              match Tree.validate g t ~dests with
              | Error _ -> false
              | Ok () ->
                  let far =
                    Option.get (Layer_peel.farthest_layer g ~source ~dests)
                  in
                  let exact =
                    Option.get
                      (Exact.steiner_cost g ~terminals:(source :: dests))
                  in
                  Tree.cost t >= exact
                  && Tree.cost t <= min far (List.length dests) * exact)
      in
      Graph.restore_all g;
      ok)

(* Property: on unfailed fat-trees the greedy also matches the
   symmetric optimum (the property above this family covers only
   leaf-spines). *)
let prop_peel_symmetric_optimal_fat_tree =
  QCheck.Test.make ~name:"layer-peel matches optimum in symmetric fat-trees"
    ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Fabric.fat_tree ~k:4 ~gpus_per_host:2 () in
      let eps = Fabric.endpoints f in
      let n = Array.length eps in
      let source = eps.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 5
        |> List.map (fun i -> eps.(i))
        |> List.filter (fun d -> d <> source)
      in
      if dests = [] then true
      else
        let greedy =
          expect_tree (Layer_peel.build (Fabric.graph f) ~source ~dests)
        in
        Tree.cost greedy = Tree.cost (Symmetric.build f ~source ~dests))

(* Property: after failing a tree edge (plus a small random extra draw)
   [repeel] returns a valid tree on the surviving fabric that keeps
   every surviving binding of the previous one — the TREE006 splice
   contract, checked with the static checker itself. *)
let prop_repeel_valid_and_splice =
  QCheck.Test.make ~name:"repeel: valid + splice-preserving after failures"
    ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Fabric.leaf_spine ~spines:3 ~leaves:4 ~hosts_per_leaf:2 () in
      let g = Fabric.graph f in
      let hosts = Fabric.hosts f in
      let n = Array.length hosts in
      let source = hosts.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 5
        |> List.map (fun i -> hosts.(i))
        |> List.filter (fun d -> d <> source)
      in
      if dests = [] then true
      else begin
        let prev = expect_tree (Layer_peel.build g ~source ~dests) in
        let edges = Tree.link_ids prev in
        let victim = List.nth edges (Rng.int rng (List.length edges)) in
        Graph.fail_link g victim;
        (* No connectivity guarantee here — the victim may already cut a
           host off; the [None] arm below covers that outcome. *)
        let _ =
          Fabric.fail_random f ~rng ~tier:`All ~fraction:0.05
            ~ensure_connected:false ()
        in
        let ok =
          match Layer_peel.repeel g ~prev ~source ~dests with
          | None ->
              (* Only acceptable when the cut disconnected a dest. *)
              not (Graph.connected g (source :: dests))
          | Some t ->
              Tree.validate g t ~dests = Ok ()
              && Peel_check.Diagnostic.errors
                   (Peel_check.Check_tree.check_splice g ~prev ~tree:t
                      ~source ~dests)
                 = []
        in
        Graph.restore_all g;
        ok
      end)

(* Property: re-peeling without any failure is the identity — same
   links, same cost, nothing rewired. *)
let prop_repeel_identity_without_failures =
  QCheck.Test.make ~name:"repeel: identity on unfailed fabrics" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Fabric.fat_tree ~k:4 () in
      let g = Fabric.graph f in
      let hosts = Fabric.hosts f in
      let n = Array.length hosts in
      let source = hosts.(Rng.int rng n) in
      let dests =
        Rng.sample_without_replacement rng n 4
        |> List.map (fun i -> hosts.(i))
        |> List.filter (fun d -> d <> source)
      in
      if dests = [] then true
      else
        let prev = expect_tree (Layer_peel.build g ~source ~dests) in
        match Layer_peel.repeel g ~prev ~source ~dests with
        | None -> false
        | Some t ->
            Tree.cost t = Tree.cost prev
            && List.sort compare (Tree.link_ids t)
               = List.sort compare (Tree.link_ids prev))

(* Property (the service's delta-repeel differential): absorb a random
   join/leave delta sequence through [splice] under the Service's
   acceptance rule — structural validity plus the Theorem 2.5 cost
   envelope, falling back to a full peel otherwise — and at every step
   compare the maintained tree against the from-scratch peel of the
   current membership and the exact-entry delivery oracle
   ([Dataplane.deliver_exact]).  Both plans must reach exactly the
   member racks, and the incremental tree must never leave the full
   peel's approximation envelope. *)
let prop_splice_differential =
  QCheck.Test.make
    ~name:"splice differential: delta plans track the from-scratch peel"
    ~count:200
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let f =
        if Rng.bool rng then
          Fabric.leaf_spine ~spines:3 ~leaves:6 ~hosts_per_leaf:2 ()
        else Fabric.fat_tree ~k:4 ()
      in
      let g = Fabric.graph f in
      let hosts = Fabric.hosts f in
      let n = Array.length hosts in
      let source = hosts.(Rng.int rng n) in
      let dests0 =
        Rng.sample_without_replacement rng n 3
        |> List.map (fun i -> hosts.(i))
        |> List.filter (fun d -> d <> source)
      in
      match dests0 with
      | [] -> true
      | dests0 ->
          let dist = Graph.bfs_dist g source in
          let bound_ok dests t =
            match
              Peel_check.Check_tree.symmetric_lower_bound f ~source ~dests
            with
            | None -> true
            | Some opt -> (
                match Layer_peel.farthest_layer g ~source ~dests with
                | None -> false
                | Some far ->
                    let factor = max 1 (min far (List.length dests)) in
                    Tree.cost t <= factor * max 1 opt)
          in
          let tree_tors t =
            List.filter
              (fun v -> (Graph.node g v).Graph.kind = Graph.Tor)
              (Tree.members t)
            |> List.sort compare
          in
          let oracle_tors dests =
            Peel.Dataplane.deliver_exact f
              (Peel.Dataplane.exact_entry f ~group:0 ~members:(source :: dests))
          in
          let cur = ref (expect_tree (Layer_peel.build g ~source ~dests:dests0)) in
          let dests = ref dests0 in
          let ok = ref true in
          for _ = 1 to 6 do
            let members = source :: !dests in
            let free = List.filter (fun h -> not (List.mem h members))
                (Array.to_list hosts)
            in
            let delta, next =
              let grow =
                (free <> [] && List.length !dests <= 1)
                || (free <> [] && Rng.bool rng)
              in
              if grow then
                let d = List.nth free (Rng.int rng (List.length free)) in
                (Layer_peel.Add d, d :: !dests)
              else
                let victim =
                  List.nth !dests (Rng.int rng (List.length !dests))
                in
                (Layer_peel.Remove victim,
                 List.filter (fun d -> d <> victim) !dests)
            in
            if next <> [] then begin
              let accepted =
                match
                  Layer_peel.splice ~dist g ~prev:!cur ~source ~dests:next
                    ~delta
                with
                | Some t
                  when Tree.validate g t ~dests:next = Ok ()
                       && bound_ok next t ->
                    t
                | _ -> expect_tree (Layer_peel.build g ~source ~dests:next)
              in
              let scratch = expect_tree (Layer_peel.build g ~source ~dests:next) in
              let oracle = oracle_tors next in
              ok :=
                !ok
                && Tree.validate g accepted ~dests:next = Ok ()
                && tree_tors accepted = oracle
                && tree_tors scratch = oracle
                && bound_ok next accepted;
              cur := accepted;
              dests := next
            end
          done;
          !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "peel_steiner"
    [
      ( "tree",
        [
          Alcotest.test_case "of_parents basic" `Quick test_tree_of_parents_basic;
          Alcotest.test_case "children" `Quick test_tree_children;
          Alcotest.test_case "rejects wrong link" `Quick test_tree_rejects_wrong_link;
          Alcotest.test_case "rejects orphan chain" `Quick test_tree_rejects_orphan_chain;
          Alcotest.test_case "rejects duplicate" `Quick test_tree_rejects_duplicate;
          Alcotest.test_case "validate down link" `Quick test_tree_validate_down_link;
          Alcotest.test_case "validate missing dest" `Quick test_tree_validate_missing_dest;
        ] );
      ( "exact",
        [
          Alcotest.test_case "two terminals" `Quick test_exact_two_terminals_is_distance;
          Alcotest.test_case "star" `Quick test_exact_star;
          Alcotest.test_case "trivial" `Quick test_exact_trivial;
          Alcotest.test_case "disconnected" `Quick test_exact_disconnected;
          Alcotest.test_case "too many terminals" `Quick test_exact_too_many_terminals;
          Alcotest.test_case "steiner point helps" `Quick test_exact_steiner_point_helps;
        ] );
      ( "symmetric",
        [
          Alcotest.test_case "leaf-spine = exact" `Quick test_symmetric_leaf_spine_matches_exact;
          Alcotest.test_case "fat-tree = exact" `Quick test_symmetric_fat_tree_matches_exact;
          Alcotest.test_case "same-host gpus" `Quick test_symmetric_same_host_gpus;
          Alcotest.test_case "cross-pod gpu" `Quick test_symmetric_cross_pod_gpu;
          Alcotest.test_case "source in dests" `Quick test_symmetric_source_in_dests_ignored;
          Alcotest.test_case "broadcast cost formula" `Quick test_symmetric_broadcast_cost_formula;
        ] );
      ( "layer_peel",
        [
          Alcotest.test_case "optimal in sym leaf-spine" `Quick
            test_peel_symmetric_equals_optimal_leaf_spine;
          Alcotest.test_case "optimal in sym fat-tree" `Quick
            test_peel_symmetric_equals_optimal_fat_tree;
          Alcotest.test_case "unreachable dest" `Quick test_peel_unreachable_dest;
          Alcotest.test_case "farthest layer" `Quick test_peel_farthest_layer;
          Alcotest.test_case "routes around failures" `Quick test_peel_paper_example_shape;
          Alcotest.test_case "deterministic" `Quick test_peel_deterministic;
          qt prop_peel_asymmetric;
          qt prop_peel_fat_tree_failures;
          qt prop_peel_symmetric_optimal;
          qt prop_peel_differential_min_bound;
          qt prop_peel_symmetric_optimal_fat_tree;
          qt prop_repeel_valid_and_splice;
          qt prop_repeel_identity_without_failures;
          qt prop_splice_differential;
        ] );
    ]
