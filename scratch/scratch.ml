open Peel_topology
open Peel_workload
module Service = Peel_ctrl.Service
module Service_ref = Peel_ctrl.Service_ref
module Rng = Peel_util.Rng

let mk () =
  let fabric = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 () in
  let tenants =
    [
      Stream.tenant ~rate:4000.0 ~scale:3 ~bytes:1e6 ~hold:1e6 ~churn:5e-4
        ~sends:5e-4 ();
      Stream.tenant ~rate:100.0 ~scale:8 ~bytes:4e6 ~hold:1e6 ~churn:5e-4
        ~sends:1e-3 ~fragmentation:0.25 ();
    ]
  in
  (fabric, Stream.create fabric (Rng.create 4200) ~tenants ())

let () =
  let n = int_of_string Sys.argv.(1) in
  let which = Sys.argv.(2) in
  if which = "ref" then begin
    let fabric, stream = mk () in
    let cfg = { Service_ref.default_config with Service_ref.capacity = 1024 } in
    let t0 = Unix.gettimeofday () in
    let o = Service_ref.run ~cfg ~jobs:1 fabric ~events:n stream in
    let t = Unix.gettimeofday () -. t0 in
    Printf.printf "ref  %d ev: %.2fs %6.0f ev/s fp=%s creates=%d installs=%d evicts=%d\n"
      n t (float_of_int n /. t) o.Service_ref.o_fingerprint
      o.Service_ref.o_slo.Service_ref.creates o.Service_ref.o_slo.Service_ref.installs
      o.Service_ref.o_slo.Service_ref.evictions
  end
  else begin
    let fabric, stream = mk () in
    let cfg =
      {
        Service.default_config with
        Service.capacity = (try int_of_string Sys.argv.(3) with _ -> 1024);
        use_cache = (which <> "nocache");
        gc_space_overhead = (if which = "newgc" then Some 512 else None);
      }
    in
    let t0 = Unix.gettimeofday () in
    let o = Service.run ~cfg ~jobs:1 fabric ~events:n stream in
    let t = Unix.gettimeofday () -. t0 in
    let st = Gc.quick_stat () in
    Printf.printf
      "%s %d ev: %.2fs %6.0f ev/s fp=%s creates=%d live=%d hits=%d misses=%d installs=%d evicts=%d peak_heap=%dMw\n"
      which n t (float_of_int n /. t) o.Service.o_fingerprint
      o.Service.o_slo.Service.creates o.Service.o_slo.Service.groups_live
      o.Service.o_slo.Service.cache_hits o.Service.o_slo.Service.cache_misses
      o.Service.o_slo.Service.installs o.Service.o_slo.Service.evictions
      (st.Gc.top_heap_words / 1_000_000)
  end
