open Peel_topology
open Peel_workload
open Peel_ctrl
module Rng = Peel_util.Rng
let () =
  let fabric = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 () in
  let tenants = [
    Stream.tenant ~rate:4000.0 ~scale:3 ~bytes:1e6 ~hold:1e6 ~churn:5e-4 ~sends:5e-4 ();
    Stream.tenant ~rate:100.0 ~scale:8 ~bytes:4e6 ~hold:1e6 ~churn:5e-4 ~sends:1e-3 ~fragmentation:0.25 () ] in
  let stream = Stream.create fabric (Rng.create 4200) ~tenants () in
  let cfg = { Service.default_config with Service.capacity = 1024 } in
  let out = Service.run ~cfg ~jobs:1 fabric ~events:2000 stream in
  let groups = out.Service.o_groups in
  let tbl = Hashtbl.create 16 in
  Group_table.iter (fun slot ->
    let k = (Service.stage_to_string (Group_table.stage groups slot),
             List.length (Group_table.switches groups slot)) in
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))) groups;
  Hashtbl.iter (fun (st, n) c -> Printf.printf "%s sw=%d: %d\n" st n c) tbl
