open Peel_topology
open Peel_workload
module Rng = Peel_util.Rng
let () =
  let fabric = Fabric.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:4 () in
  let tenants = [
    Stream.tenant ~rate:4000.0 ~scale:3 ~bytes:1e6 ~hold:1e6 ~churn:5e-4 ~sends:5e-4 ();
    Stream.tenant ~rate:100.0 ~scale:8 ~bytes:4e6 ~hold:1e6 ~churn:5e-4 ~sends:1e-3 ~fragmentation:0.25 ();
  ] in
  let stream = Stream.create fabric (Rng.create 4200) ~tenants () in
  let n = try int_of_string Sys.argv.(1) with _ -> 100000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do ignore (Stream.next stream) done;
  let t = Unix.gettimeofday () -. t0 in
  Printf.printf "stream only: %.3fs (%.0f ev/s) live=%d\n" t (float_of_int n /. t) (Stream.live_count stream)
